package analyzers_test

import (
	"bytes"
	"runtime"
	"testing"

	"carbonexplorer/internal/analyzers"
	"carbonexplorer/internal/analyzers/load"
)

// TestParallelLintMatchesSequential is the acceptance gate for the
// parallel driver: same packages, any jobs count, byte-identical output.
// Both the parallel loader and the parallel linter are exercised, and the
// comparison is over the rendered text, JSON, and SARIF forms — the bytes
// CI artifacts actually carry.
func TestParallelLintMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module lint skipped in -short mode")
	}
	root, err := load.ModuleRoot()
	if err != nil {
		t.Fatalf("module root: %v", err)
	}
	seqPkgs, err := load.Patterns(root, "./...")
	if err != nil {
		t.Fatalf("sequential load: %v", err)
	}
	parPkgs, err := load.PatternsJobs(root, runtime.NumCPU(), "./...")
	if err != nil {
		t.Fatalf("parallel load: %v", err)
	}
	if len(seqPkgs) != len(parPkgs) {
		t.Fatalf("parallel loader found %d packages, sequential %d", len(parPkgs), len(seqPkgs))
	}
	for i := range seqPkgs {
		if seqPkgs[i].PkgPath != parPkgs[i].PkgPath {
			t.Fatalf("package order diverged at %d: %s vs %s", i, seqPkgs[i].PkgPath, parPkgs[i].PkgPath)
		}
	}

	seq, err := analyzers.Lint(seqPkgs, analyzers.All())
	if err != nil {
		t.Fatalf("sequential lint: %v", err)
	}
	for _, jobs := range []int{2, runtime.NumCPU()} {
		par, err := analyzers.LintParallel(parPkgs, analyzers.All(), jobs)
		if err != nil {
			t.Fatalf("parallel lint (jobs=%d): %v", jobs, err)
		}
		assertSameBytes(t, seq, par, root, jobs)
	}
}

// assertSameBytes renders both finding sets in every output format and
// compares the bytes.
func assertSameBytes(t *testing.T, seq, par []analyzers.Finding, root string, jobs int) {
	t.Helper()
	render := func(fs []analyzers.Finding) []([]byte) {
		var text, js, sarif bytes.Buffer
		if err := analyzers.WriteText(&text, fs); err != nil {
			t.Fatalf("text: %v", err)
		}
		if err := analyzers.WriteJSON(&js, fs, root); err != nil {
			t.Fatalf("json: %v", err)
		}
		if err := analyzers.WriteSARIF(&sarif, fs, analyzers.All(), root); err != nil {
			t.Fatalf("sarif: %v", err)
		}
		return [][]byte{text.Bytes(), js.Bytes(), sarif.Bytes()}
	}
	a, b := render(seq), render(par)
	for i, format := range []string{"text", "json", "sarif"} {
		if !bytes.Equal(a[i], b[i]) {
			t.Errorf("jobs=%d: %s output differs from sequential\nseq:\n%s\npar:\n%s", jobs, format, a[i], b[i])
		}
	}
}
