// Package analysis defines the analyzer interface the carbonlint suite is
// written against: a deliberately small, API-compatible subset of
// golang.org/x/tools/go/analysis.
//
// The subset exists because this module is built in network-restricted
// environments with no external dependencies; x/tools cannot be vendored
// here. Every type mirrors its x/tools namesake field-for-field (Analyzer,
// Pass, Diagnostic), so if the real dependency ever becomes available the
// analyzers port mechanically: swap the import path and delete this package.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check: a name, prose documentation for
// `carbonlint -list` and docs/LINTING.md, and the Run function applied to
// each package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //carbonlint:allow suppression directives. It must be a valid
	// identifier.
	Name string
	// Doc is the analyzer's documentation: first line a one-sentence
	// summary, then the invariant it protects.
	Doc string
	// Run applies the check to a single package and reports findings
	// through pass.Report. The result value is unused by this driver but
	// kept for x/tools signature compatibility.
	Run func(*Pass) (any, error)
}

// Pass hands one type-checked package to an analyzer.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset maps token positions of Files to file/line/column.
	Fset *token.FileSet
	// Files are the package's parsed sources, excluding test files.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds type and object resolution for Files.
	TypesInfo *types.Info
	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding at one source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}
