package analyzers_test

import (
	"testing"

	"carbonexplorer/internal/analyzers"
	"carbonexplorer/internal/analyzers/load"
)

// TestRepoLintsClean runs the full carbonlint suite over the module itself,
// making `go test ./...` a lint gate: a new violation — or a suppression
// without a reason, or a stale suppression — fails the build, not just the
// standalone cmd/carbonlint run.
func TestRepoLintsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module lint skipped in -short mode")
	}
	root, err := load.ModuleRoot()
	if err != nil {
		t.Fatalf("module root: %v", err)
	}
	pkgs, err := load.Patterns(root, "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	findings, err := analyzers.Lint(pkgs, analyzers.All())
	if err != nil {
		t.Fatalf("lint: %v", err)
	}
	for _, f := range findings {
		t.Error(f.String())
	}
}
