// Fixture: the network transport's checkpoint staging (network.go,
// service.go shapes) lives in the coordinator package, so materializing a
// server-fetched checkpoint with raw file operations is flagged — a crash
// mid-write would leave a torn checkpoint for the resuming worker.
package coordinator

import "os"

func materialize(path string, payload []byte) error {
	f, err := os.Create(path) // want `os\.Create in a checkpoint-owning package`
	if err != nil {
		return err
	}
	if _, err := f.Write(payload); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

func stageUpload(dir string, lease int, payload []byte) error {
	staged := dir + "/upload.json"
	return os.WriteFile(staged, payload, 0o644) // want `os\.WriteFile in a checkpoint-owning package`
}
