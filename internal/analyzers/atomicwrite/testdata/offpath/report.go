// Fixture: raw file writes outside the checkpoint package are out of
// scope for atomicwrite.
package report

import "os"

func dump(path string, data []byte) error { return os.WriteFile(path, data, 0o600) }
