// Fixture: the atomic temp+rename helper pattern with its sanctioned
// annotations lints clean inside the checkpoint package.
package sweep

import "os"

func save(path string, data []byte) error {
	tmp := path + ".tmp"
	//carbonlint:allow atomicwrite fixture: the write half of the atomic temp+rename helper pattern
	if err := os.WriteFile(tmp, data, 0o600); err != nil {
		return err
	}
	//carbonlint:allow atomicwrite fixture: the commit half of the atomic temp+rename helper pattern
	return os.Rename(tmp, path)
}
