// Fixture: the coordinator package (checked under
// carbonexplorer/internal/coordinator) owns crash-safe lease files, so raw
// file operations are flagged there too.
package coordinator

import "os"

func publishLease(path string, data []byte) error {
	if err := os.WriteFile(path+".tmp", data, 0o644); err != nil { // want `os\.WriteFile in a checkpoint-owning package`
		return err
	}
	return os.Rename(path+".tmp", path) // want `os\.Rename in a checkpoint-owning package`
}
