// Fixture: raw file operations in the checkpoint package (checked under
// carbonexplorer/internal/sweep) must be flagged.
package sweep

import "os"

func persist(path string, data []byte) error {
	if err := os.WriteFile(path, data, 0o600); err != nil { // want `os\.WriteFile in a checkpoint-owning package`
		return err
	}
	f, err := os.Create(path + ".lock") // want `os\.Create in a checkpoint-owning package`
	if err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(path+".lock", path) // want `os\.Rename in a checkpoint-owning package`
}
