package atomicwrite_test

import (
	"testing"

	"carbonexplorer/internal/analyzers/atomicwrite"
	"carbonexplorer/internal/analyzers/linttest"
)

func TestRawWritesInSweepFlagged(t *testing.T) {
	linttest.Run(t, atomicwrite.Analyzer, "testdata/flag", "carbonexplorer/internal/sweep")
}

func TestAnnotatedHelperClean(t *testing.T) {
	linttest.Run(t, atomicwrite.Analyzer, "testdata/clean", "carbonexplorer/internal/sweep")
}

func TestRawWritesInCoordinatorFlagged(t *testing.T) {
	linttest.Run(t, atomicwrite.Analyzer, "testdata/flagcoordinator", "carbonexplorer/internal/coordinator")
}

func TestNetworkCheckpointStagingFlagged(t *testing.T) {
	linttest.Run(t, atomicwrite.Analyzer, "testdata/flagnetwork", "carbonexplorer/internal/coordinator")
}

func TestOtherPackagesExempt(t *testing.T) {
	linttest.Run(t, atomicwrite.Analyzer, "testdata/offpath", "carbonexplorer/internal/report")
}
