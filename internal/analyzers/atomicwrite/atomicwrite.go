// Package atomicwrite guards the checkpoint crash-safety invariant.
//
// Checkpoints survive kill -9 because every write goes through the single
// atomic helper sweep.WriteFileAtomic: marshal, write a temp file in the
// target directory, rename over the target. A direct os.WriteFile,
// os.Create, or os.Rename anywhere else in the checkpoint-owning packages
// could leave a torn checkpoint behind — the exact failure mode the chaos
// tests exist to rule out, reintroduced by one convenient shortcut.
//
// Two packages own crash-safe files: internal/sweep (sweep checkpoints)
// and internal/coordinator (lease files and per-lease checkpoints, whose
// theft protocol assumes a lease file is never observed half-written). The
// analyzer flags every use of os.WriteFile, os.Create, and os.Rename in
// both. The atomic helper itself carries //carbonlint:allow annotations —
// it is the one sanctioned site, and keeping it annotated rather than
// hard-coded means moving or duplicating it cannot dodge the rule.
package atomicwrite

import (
	"go/ast"
	"go/types"

	"carbonexplorer/internal/analyzers/analysis"
)

// Analyzer is the atomicwrite check.
var Analyzer = &analysis.Analyzer{
	Name: "atomicwrite",
	Doc:  "route every checkpoint and lease write through the atomic temp+rename helper",
	Run:  run,
}

// checkpointPkgs are the packages owning crash-safe file persistence.
var checkpointPkgs = map[string]bool{
	"carbonexplorer/internal/sweep":       true,
	"carbonexplorer/internal/coordinator": true,
}

// rawFileFuncs are the os entry points that can produce torn files when
// pointed at a checkpoint path.
var rawFileFuncs = map[string]bool{"WriteFile": true, "Create": true, "Rename": true}

func run(pass *analysis.Pass) (any, error) {
	if !checkpointPkgs[pass.Pkg.Path()] {
		return nil, nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "os" || !rawFileFuncs[fn.Name()] {
				return true
			}
			pass.Reportf(id.Pos(), "os.%s in a checkpoint-owning package: write through sweep.WriteFileAtomic so a crash cannot leave a torn file", fn.Name())
			return true
		})
	}
	return nil, nil
}
