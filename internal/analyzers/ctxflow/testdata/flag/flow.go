// Fixture: severed context threading (checked under an internal/ import
// path so the Background/TODO rule applies).
package engine

import "context"

func leaf(ctx context.Context) error { return ctx.Err() }

func search() error { return nil }

func searchContext(ctx context.Context) error { return ctx.Err() }

func driver(ctx context.Context) error {
	if err := leaf(context.Background()); err != nil { // want `driver receives a context\.Context but passes context\.Background\(\) to leaf`
		return err
	}
	return search() // want `driver receives a context\.Context but calls search; call searchContext\(ctx, \.\.\.\)`
}

type engine struct{}

func (e *engine) run() error { return nil }

func (e *engine) runContext(ctx context.Context) error { return ctx.Err() }

func methodDriver(ctx context.Context, e *engine) error {
	return e.run() // want `methodDriver receives a context\.Context but calls run; call runContext\(ctx, \.\.\.\)`
}

func helper() {
	_ = context.TODO() // want `context\.TODO\(\) inside internal/`
}
