// Fixture: HTTP-server-shaped code under internal/ (checked as
// carbonexplorer/internal/coordinator) must thread the request context —
// minting context.Background() inside a handler severs cancellation for
// the whole call chain below it.
package coordinator

import "context"

type request struct{ ctx context.Context }

func (r *request) context() context.Context { return r.ctx }

func fetch(ctx context.Context) error { return ctx.Err() }

func handle(r *request) error {
	return fetch(context.Background()) // want `context\.Background\(\) inside internal/`
}

func shutdownGrace(ctx context.Context) context.Context {
	// Detaching from an already-cancelled context for bounded cleanup is
	// the sanctioned pattern.
	return context.WithoutCancel(ctx)
}
