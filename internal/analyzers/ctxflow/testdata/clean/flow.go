// Fixture: threaded contexts and an annotated compatibility wrapper — the
// sanctioned shapes — must produce no findings.
package engine

import "context"

func leaf(ctx context.Context) error { return ctx.Err() }

func driver(ctx context.Context) error { return leaf(ctx) }

func wrapper() error {
	//carbonlint:allow ctxflow fixture: documented non-cancellable wrapper, like explorer.Search
	return leaf(context.Background())
}

// workerPool mirrors SearchContext's dispatcher: the context gates every
// send and every worker iteration re-checks it, so cancellation stops
// within one item's latency without each worker taking the ctx itself.
func workerPool(ctx context.Context, n int) []error {
	errs := make([]error, n)
	next := make(chan int)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := range next {
			if err := ctx.Err(); err != nil {
				errs[i] = err
			}
		}
	}()
	for i := 0; i < n; i++ {
		if ctx.Err() != nil {
			break
		}
		next <- i
	}
	close(next)
	<-done
	return errs
}
