// Fixture: threaded contexts and an annotated compatibility wrapper — the
// sanctioned shapes — must produce no findings.
package engine

import "context"

func leaf(ctx context.Context) error { return ctx.Err() }

func driver(ctx context.Context) error { return leaf(ctx) }

func wrapper() error {
	//carbonlint:allow ctxflow fixture: documented non-cancellable wrapper, like explorer.Search
	return leaf(context.Background())
}
