package ctxflow_test

import (
	"testing"

	"carbonexplorer/internal/analyzers/ctxflow"
	"carbonexplorer/internal/analyzers/linttest"
)

func TestSeveredContextsFlagged(t *testing.T) {
	linttest.Run(t, ctxflow.Analyzer, "testdata/flag", "carbonexplorer/internal/engine")
}

func TestThreadedAndAnnotatedClean(t *testing.T) {
	linttest.Run(t, ctxflow.Analyzer, "testdata/clean", "carbonexplorer/internal/engine")
}

func TestServerHandlersInScope(t *testing.T) {
	linttest.Run(t, ctxflow.Analyzer, "testdata/flagserver", "carbonexplorer/internal/coordinator")
}
