// Package ctxflow enforces end-to-end context threading.
//
// The cancellation guarantees of the sweep engine — Ctrl-C stops within one
// design's latency, a timeout flushes a final checkpoint — hold only if
// every function on the call path hands its context down. A single
// context.Background() in the middle silently detaches everything below it
// from the caller's deadline.
//
// Flagged:
//   - context.Background() / context.TODO() anywhere under internal/; the
//     recognized thin compatibility wrappers (explorer.Search and friends,
//     which exist precisely to offer a non-Context API) carry an explicit
//     //carbonlint:allow annotation instead of a blanket exemption;
//   - a function that receives a context.Context but passes a fresh
//     Background()/TODO() to a context-taking callee;
//   - a function that receives a context.Context but calls the non-Context
//     variant of a callee that has a *Context sibling (Search when
//     SearchContext exists), severing cancellation mid-path.
package ctxflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"carbonexplorer/internal/analyzers/analysis"
)

// Analyzer is the ctxflow check.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "require contexts to be threaded end-to-end instead of minting context.Background()",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	// flagged records Background()/TODO() call sites already reported by
	// the drops-ctx rule, so the internal/ rule does not double-report.
	flagged := map[token.Pos]bool{}

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !hasContextParam(pass, fd) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				checkCtxHolder(pass, fd.Name.Name, call, flagged)
				return true
			})
		}
	}

	if strings.HasPrefix(pass.Pkg.Path(), "carbonexplorer/internal/") {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if name := backgroundOrTODO(pass, call); name != "" && !flagged[call.Pos()] {
					pass.Reportf(call.Pos(), "context.%s() inside internal/: thread the caller's ctx (annotate recognized non-Context compatibility wrappers)", name)
				}
				return true
			})
		}
	}
	return nil, nil
}

// checkCtxHolder applies the two rules for calls made while holding a ctx
// parameter.
func checkCtxHolder(pass *analysis.Pass, holder string, call *ast.CallExpr, flagged map[token.Pos]bool) {
	callee := calleeFunc(pass, call)
	if callee == nil {
		return
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return
	}

	// Rule: a fresh Background()/TODO() passed where the callee expects a
	// context, despite the enclosing function holding one.
	for i, arg := range call.Args {
		argCall, ok := arg.(*ast.CallExpr)
		if !ok {
			continue
		}
		if name := backgroundOrTODO(pass, argCall); name != "" && paramIsContext(sig, i) {
			pass.Reportf(argCall.Pos(), "%s receives a context.Context but passes context.%s() to %s, detaching it from the caller's cancellation", holder, name, callee.Name())
			flagged[argCall.Pos()] = true
		}
	}

	// Rule: calling the non-Context variant when a *Context sibling exists.
	if !signatureHasContext(sig) {
		if sib := contextSibling(callee, sig); sib != nil {
			pass.Reportf(call.Pos(), "%s receives a context.Context but calls %s; call %s(ctx, ...) so cancellation propagates", holder, callee.Name(), sib.Name())
		}
	}
}

// calleeFunc resolves the called function or method, if statically known.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// backgroundOrTODO reports whether call is context.Background() or
// context.TODO(), returning the function name ("" otherwise).
func backgroundOrTODO(pass *analysis.Pass, call *ast.CallExpr) string {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return ""
	}
	if fn.Name() == "Background" || fn.Name() == "TODO" {
		return fn.Name()
	}
	return ""
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// hasContextParam reports whether the declared function receives a
// context.Context parameter.
func hasContextParam(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := obj.Type().(*types.Signature)
	return ok && signatureHasContext(sig)
}

// signatureHasContext reports whether any parameter of sig is a
// context.Context.
func signatureHasContext(sig *types.Signature) bool {
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if isContextType(params.At(i).Type()) {
			return true
		}
	}
	return false
}

// paramIsContext reports whether the i'th argument lands on a
// context.Context parameter.
func paramIsContext(sig *types.Signature, i int) bool {
	params := sig.Params()
	if i >= params.Len() {
		return false
	}
	return isContextType(params.At(i).Type())
}

// contextSibling finds the callee's *Context variant: a function or method
// named <callee>Context, in the same scope, that takes a context.Context.
func contextSibling(callee *types.Func, sig *types.Signature) *types.Func {
	name := callee.Name() + "Context"
	var obj types.Object
	if recv := sig.Recv(); recv != nil {
		obj, _, _ = types.LookupFieldOrMethod(recv.Type(), true, callee.Pkg(), name)
	} else if callee.Pkg() != nil {
		obj = callee.Pkg().Scope().Lookup(name)
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	sibSig, ok := fn.Type().(*types.Signature)
	if !ok || !signatureHasContext(sibSig) {
		return nil
	}
	return fn
}
