package analyzers

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"strings"

	"carbonexplorer/internal/analyzers/analysis"
)

// jsonFinding is the machine-readable form of one finding. File is
// root-relative when the finding lies under root, so output is stable
// across checkouts.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// relFile renders a finding's filename relative to root (keeping absolute
// paths that escape it).
func relFile(root, file string) string {
	if root == "" {
		return file
	}
	rel, err := filepath.Rel(root, file)
	if err != nil || strings.HasPrefix(rel, "..") {
		return file
	}
	return filepath.ToSlash(rel)
}

// WriteJSON renders findings as an indented JSON array (never null: no
// findings is an empty array, so consumers can len() without a nil check).
func WriteJSON(w io.Writer, findings []Finding, root string) error {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, jsonFinding{
			File:     relFile(root, f.Position.Filename),
			Line:     f.Position.Line,
			Column:   f.Position.Column,
			Analyzer: f.Analyzer,
			Message:  f.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// SARIF 2.1.0 skeleton, the minimal subset CI artifact viewers consume.
type sarifLog struct {
	Version string     `json:"version"`
	Schema  string     `json:"$schema"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF renders findings as a SARIF 2.1.0 log: one run, one rule per
// suite analyzer (plus the directive check), findings as error-level
// results — carbonlint findings gate the build, so "error" is the honest
// severity. Rule docs come from each analyzer's Doc first sentence.
func WriteSARIF(w io.Writer, findings []Finding, suite []*analysis.Analyzer, root string) error {
	rules := make([]sarifRule, 0, len(suite)+1)
	for _, a := range suite {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	rules = append(rules, sarifRule{
		ID:               DirectiveCheck,
		ShortDescription: sarifMessage{Text: "malformed, unknown, or unused //carbonlint directives"},
	})
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: relFile(root, f.Position.Filename)},
				Region:           sarifRegion{StartLine: f.Position.Line, StartColumn: f.Position.Column},
			}}},
		})
	}
	log := sarifLog{
		Version: "2.1.0",
		Schema:  "https://docs.oasis-open.org/sarif/sarif/v2.1.0/errata01/os/schemas/sarif-schema-2.1.0.json",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "carbonlint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// WriteText renders findings in the go-vet style line format.
func WriteText(w io.Writer, findings []Finding) error {
	for _, f := range findings {
		if _, err := fmt.Fprintln(w, f.String()); err != nil {
			return err
		}
	}
	return nil
}
