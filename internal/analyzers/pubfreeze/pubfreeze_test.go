package pubfreeze_test

import (
	"testing"

	"carbonexplorer/internal/analyzers/linttest"
	"carbonexplorer/internal/analyzers/pubfreeze"
)

func TestWritesOutsideDeclaringFileFlagged(t *testing.T) {
	linttest.Run(t, pubfreeze.Analyzer, "testdata/flag", "carbonexplorer/internal/frozenfixture")
}

func TestConstructorAndReadsClean(t *testing.T) {
	linttest.Run(t, pubfreeze.Analyzer, "testdata/clean", "carbonexplorer/internal/frozenfixture")
}
