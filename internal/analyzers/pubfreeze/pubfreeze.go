// Package pubfreeze freezes //carbonlint:immutable types outside their
// declaring file.
//
// serve.Index publishes its Snapshot for lock-free concurrent reads: the
// no-locks claim in docs/SERVING.md is sound only while nothing mutates a
// snapshot after it is built. This analyzer makes that invariant a build
// property: a type whose doc comment carries //carbonlint:immutable accepts
// field writes, slice/map element writes, and ++/-- only in the file that
// declares it (which is where the constructor lives); any write reached
// through a value of the type from another file in the package is flagged.
//
// The freeze is per-file rather than per-function so constructors, Load
// paths, and test hooks that legitimately build the value stay in one
// reviewable place. Cross-package writes need no analyzer: the frozen
// types keep their fields unexported, so the compiler already rejects them.
//
// A malformed //carbonlint:immutable marker — trailing arguments, attached
// to a function, floating in a body — is reported here.
package pubfreeze

import (
	"go/ast"
	"go/types"

	"carbonexplorer/internal/analyzers/analysis"
	"carbonexplorer/internal/analyzers/directive"
)

// Analyzer is the pubfreeze check.
var Analyzer = &analysis.Analyzer{
	Name: "pubfreeze",
	Doc:  "forbid writes to //carbonlint:immutable types outside their declaring file",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	m := directive.ScanMarkers(pass.Files)
	for _, d := range m.ImmutableDiags {
		pass.Report(d)
	}
	if len(m.Immutable) == 0 {
		return nil, nil
	}

	// frozen maps each annotated type to the file that declares it.
	frozen := map[*types.TypeName]string{}
	for id := range m.Immutable {
		if tn, ok := pass.TypesInfo.Defs[id].(*types.TypeName); ok {
			frozen[tn] = pass.Fset.Position(id.Pos()).Filename
		}
	}

	c := checker{pass: pass, frozen: frozen}
	for _, f := range pass.Files {
		file := pass.Fset.Position(f.Pos()).Filename
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					c.checkWrite(lhs, file)
				}
			case *ast.IncDecStmt:
				c.checkWrite(n.X, file)
			}
			return true
		})
	}
	return nil, nil
}

type checker struct {
	pass   *analysis.Pass
	frozen map[*types.TypeName]string
}

// checkWrite flags target when the write path passes through a frozen type
// declared in a different file.
func (c *checker) checkWrite(target ast.Expr, file string) {
	for {
		switch e := ast.Unparen(target).(type) {
		case *ast.SelectorExpr:
			if tn := c.frozenBase(e.X); tn != nil && c.frozen[tn] != file {
				c.pass.Reportf(target.Pos(),
					"write to field %s of immutable type %s outside its declaring file; %s is frozen after construction (see //carbonlint:immutable)",
					e.Sel.Name, tn.Name(), tn.Name())
				return
			}
			target = e.X
		case *ast.IndexExpr:
			if tn := c.frozenBase(e.X); tn != nil && c.frozen[tn] != file {
				c.pass.Reportf(target.Pos(),
					"element write through immutable type %s outside its declaring file; %s is frozen after construction (see //carbonlint:immutable)",
					tn.Name(), tn.Name())
				return
			}
			target = e.X
		case *ast.StarExpr:
			target = e.X
		default:
			return
		}
	}
}

// frozenBase resolves expr's type (through pointers) to a frozen TypeName.
func (c *checker) frozenBase(expr ast.Expr) *types.TypeName {
	t := c.pass.TypesInfo.TypeOf(expr)
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	if _, ok := c.frozen[named.Obj()]; !ok {
		return nil
	}
	return named.Obj()
}
