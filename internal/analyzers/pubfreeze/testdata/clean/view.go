// Fixture, declaring file: frozen type with all writes where they belong.
package view

// Snapshot is frozen after construction.
//
//carbonlint:immutable
type Snapshot struct {
	rows []int
}

// Build is the constructor; its writes are in the declaring file.
func Build(n int) *Snapshot {
	s := &Snapshot{rows: make([]int, n)}
	for i := range s.rows {
		s.rows[i] = i
	}
	return s
}
