// Fixture, second file: reads of a frozen type, writes to an unannotated
// type, and a reasoned suppression all stay clean.
package view

type scratch struct {
	rows []int
}

func sum(s *Snapshot) int {
	t := 0
	for _, r := range s.rows {
		t += r
	}
	return t
}

func fill(w *scratch, n int) {
	w.rows = make([]int, n) // unannotated type: writable anywhere
	for i := range w.rows {
		w.rows[i] = i
	}
}

func repair(s *Snapshot) {
	s.rows[0] = 0 //carbonlint:allow pubfreeze fixture exercises a reviewed in-place repair before publish
}
