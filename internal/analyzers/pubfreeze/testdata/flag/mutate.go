// Fixture, second file: every write path through a frozen type is flagged;
// malformed markers are reported.
package frozen

func corrupt(idx *Index, names Names) {
	idx.best = 3         // want `write to field best of immutable type Index outside its declaring file`
	idx.points[0] = 1    // want `write to field points of immutable type Index outside its declaring file`
	idx.best++           // want `write to field best of immutable type Index outside its declaring file`
	names[0] = "renamed" // want `element write through immutable type Names outside its declaring file`
}

func reads(idx *Index) float64 {
	local := idx.best // reading is what the freeze protects
	return idx.points[local]
}

//carbonlint:immutable // want `annotates a function, but it applies to type declarations`
func notAType() {}

//carbonlint:immutable because shared // want `takes no arguments`
type markedWithArgs struct{}
