// Fixture, declaring file: the frozen type and its constructor. Writes in
// this file are the constructor's privilege and stay clean.
package frozen

// Index is the published, read-only view.
//
//carbonlint:immutable
type Index struct {
	points []float64
	best   int
}

// Names is a frozen slice type.
//
//carbonlint:immutable
type Names []string

// NewIndex builds an Index; construction writes are allowed here.
func NewIndex(points []float64) *Index {
	idx := &Index{points: points}
	idx.best = 0
	for i := range idx.points {
		idx.points[i] = points[i]
	}
	return idx
}
