package analyzers

import (
	"fmt"
	"go/token"
	"sort"
	"sync"

	"carbonexplorer/internal/analyzers/analysis"
	"carbonexplorer/internal/analyzers/atomicwrite"
	"carbonexplorer/internal/analyzers/benchdrift"
	"carbonexplorer/internal/analyzers/ctxflow"
	"carbonexplorer/internal/analyzers/detrand"
	"carbonexplorer/internal/analyzers/directive"
	"carbonexplorer/internal/analyzers/errwrap"
	"carbonexplorer/internal/analyzers/floatcmp"
	"carbonexplorer/internal/analyzers/hotalloc"
	"carbonexplorer/internal/analyzers/jsontag"
	"carbonexplorer/internal/analyzers/lifecycle"
	"carbonexplorer/internal/analyzers/load"
	"carbonexplorer/internal/analyzers/pubfreeze"
)

// All returns the full carbonlint suite, in stable name order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		atomicwrite.Analyzer,
		benchdrift.Analyzer,
		ctxflow.Analyzer,
		detrand.Analyzer,
		errwrap.Analyzer,
		floatcmp.Analyzer,
		hotalloc.Analyzer,
		jsontag.Analyzer,
		lifecycle.Analyzer,
		pubfreeze.Analyzer,
	}
}

// DirectiveCheck is the name findings about the suppression mechanism
// itself are attributed to (malformed, unknown-analyzer, or unused
// //carbonlint:allow directives). It is not a suppressible analyzer.
const DirectiveCheck = "directive"

// Finding is one diagnostic that survived suppression.
type Finding struct {
	// Position locates the finding.
	Position token.Position
	// Analyzer is the reporting analyzer's name (or DirectiveCheck).
	Analyzer string
	// Message describes the violation.
	Message string
}

// String formats a finding the way go vet does: file:line:col: message.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Position, f.Analyzer, f.Message)
}

// lintPackage runs the suite over one package and returns its surviving
// findings, unsorted. names must be the suite's analyzer names.
func lintPackage(pkg *load.Package, suite []*analysis.Analyzer, names []string) ([]Finding, error) {
	var findings []Finding
	add := func(name string, diags []analysis.Diagnostic) {
		for _, d := range diags {
			findings = append(findings, Finding{
				Position: pkg.Fset.Position(d.Pos),
				Analyzer: name,
				Message:  d.Message,
			})
		}
	}
	dirs, malformed := directive.Scan(pkg.Fset, pkg.Files, names)
	add(DirectiveCheck, malformed)
	for _, a := range suite {
		var diags []analysis.Diagnostic
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.PkgPath, err)
		}
		add(a.Name, directive.Suppress(pkg.Fset, dirs, a.Name, diags))
	}
	add(DirectiveCheck, directive.Unused(dirs))
	return findings, nil
}

// sortFindings establishes the output order shared by the sequential and
// parallel drivers. The comparator is total — message is the final
// tie-break — so the same finding set always renders the same bytes, no
// matter which goroutine produced each finding.
func sortFindings(findings []Finding) {
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Position, findings[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		if findings[i].Analyzer != findings[j].Analyzer {
			return findings[i].Analyzer < findings[j].Analyzer
		}
		return findings[i].Message < findings[j].Message
	})
}

// suiteNames extracts the analyzer names the directive scanner validates
// //carbonlint:allow targets against.
func suiteNames(suite []*analysis.Analyzer) []string {
	names := make([]string, len(suite))
	for i, a := range suite {
		names[i] = a.Name
	}
	return names
}

// Lint runs every analyzer in suite over every package, applies the
// suppression directives, and returns all surviving findings sorted by
// position. An analyzer returning an error aborts the run: a broken check
// must fail loudly, not pass silently.
func Lint(pkgs []*load.Package, suite []*analysis.Analyzer) ([]Finding, error) {
	names := suiteNames(suite)
	var findings []Finding
	for _, pkg := range pkgs {
		fs, err := lintPackage(pkg, suite, names)
		if err != nil {
			return nil, err
		}
		findings = append(findings, fs...)
	}
	sortFindings(findings)
	return findings, nil
}

// LintParallel is Lint with up to jobs packages analyzed concurrently.
// Packages are independent (analyzers see one package at a time) and the
// final sort is total, so the result is byte-identical to Lint's on the
// same packages — pinned by TestParallelLintMatchesSequential.
func LintParallel(pkgs []*load.Package, suite []*analysis.Analyzer, jobs int) ([]Finding, error) {
	if jobs <= 1 || len(pkgs) <= 1 {
		return Lint(pkgs, suite)
	}
	if jobs > len(pkgs) {
		jobs = len(pkgs)
	}
	names := suiteNames(suite)
	perPkg := make([][]Finding, len(pkgs))
	errs := make([]error, len(pkgs))
	queue := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range queue {
				perPkg[i], errs[i] = lintPackage(pkgs[i], suite, names)
			}
		}()
	}
	for i := range pkgs {
		queue <- i
	}
	close(queue)
	wg.Wait()
	var findings []Finding
	for i := range pkgs {
		if errs[i] != nil {
			return nil, errs[i]
		}
		findings = append(findings, perPkg[i]...)
	}
	sortFindings(findings)
	return findings, nil
}
