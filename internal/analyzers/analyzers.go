package analyzers

import (
	"fmt"
	"go/token"
	"sort"

	"carbonexplorer/internal/analyzers/analysis"
	"carbonexplorer/internal/analyzers/atomicwrite"
	"carbonexplorer/internal/analyzers/ctxflow"
	"carbonexplorer/internal/analyzers/detrand"
	"carbonexplorer/internal/analyzers/directive"
	"carbonexplorer/internal/analyzers/errwrap"
	"carbonexplorer/internal/analyzers/floatcmp"
	"carbonexplorer/internal/analyzers/jsontag"
	"carbonexplorer/internal/analyzers/load"
)

// All returns the full carbonlint suite, in stable name order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		atomicwrite.Analyzer,
		ctxflow.Analyzer,
		detrand.Analyzer,
		errwrap.Analyzer,
		floatcmp.Analyzer,
		jsontag.Analyzer,
	}
}

// DirectiveCheck is the name findings about the suppression mechanism
// itself are attributed to (malformed, unknown-analyzer, or unused
// //carbonlint:allow directives). It is not a suppressible analyzer.
const DirectiveCheck = "directive"

// Finding is one diagnostic that survived suppression.
type Finding struct {
	// Position locates the finding.
	Position token.Position
	// Analyzer is the reporting analyzer's name (or DirectiveCheck).
	Analyzer string
	// Message describes the violation.
	Message string
}

// String formats a finding the way go vet does: file:line:col: message.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Position, f.Analyzer, f.Message)
}

// Lint runs every analyzer in suite over every package, applies the
// suppression directives, and returns all surviving findings sorted by
// position. An analyzer returning an error aborts the run: a broken check
// must fail loudly, not pass silently.
func Lint(pkgs []*load.Package, suite []*analysis.Analyzer) ([]Finding, error) {
	names := make([]string, len(suite))
	for i, a := range suite {
		names[i] = a.Name
	}
	var findings []Finding
	add := func(fset *token.FileSet, name string, diags []analysis.Diagnostic) {
		for _, d := range diags {
			findings = append(findings, Finding{
				Position: fset.Position(d.Pos),
				Analyzer: name,
				Message:  d.Message,
			})
		}
	}
	for _, pkg := range pkgs {
		dirs, malformed := directive.Scan(pkg.Fset, pkg.Files, names)
		add(pkg.Fset, DirectiveCheck, malformed)
		for _, a := range suite {
			var diags []analysis.Diagnostic
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.PkgPath, err)
			}
			add(pkg.Fset, a.Name, directive.Suppress(pkg.Fset, dirs, a.Name, diags))
		}
		add(pkg.Fset, DirectiveCheck, directive.Unused(dirs))
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Position, findings[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return findings[i].Analyzer < findings[j].Analyzer
	})
	return findings, nil
}
