package load

import (
	"go/token"
	"testing"
)

// BenchmarkCheckRepo measures the parse + type-check phase over every
// production package in this module, with the `go list` subprocess hoisted
// out of the timed loop — the phase is pure CPU, so its numbers are stable
// where end-to-end wall clock (subprocess exec, build-cache probing) is
// noisy. This is the phase PatternsJobs fans out across workers and the
// phase the types.Info trim (newInfo) shrank; committed numbers live in
// BENCH_lint.json.
func BenchmarkCheckRepo(b *testing.B) {
	root, err := ModuleRoot()
	if err != nil {
		b.Fatal(err)
	}
	list, err := goList(root, []string{"./..."})
	if err != nil {
		b.Fatal(err)
	}
	exports := make(map[string]string, len(list))
	var targets []listPkg
	for _, p := range list {
		if p.Error != nil {
			b.Fatalf("load: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && len(p.GoFiles) > 0 {
			targets = append(targets, p)
		}
	}
	targets = dependencyOrder(targets)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fset := token.NewFileSet()
		imp := newImporter(fset, exports)
		for _, t := range targets {
			if _, err := check(fset, imp, t); err != nil {
				b.Fatal(err)
			}
		}
	}
}
