// Package load type-checks packages for the carbonlint analyzers without
// depending on golang.org/x/tools/go/packages.
//
// It shells out to `go list -export -deps -json`, which compiles nothing
// beyond what a normal build would and yields, for every package in the
// dependency graph, the path of its compiled export data in the build cache.
// Target packages are then parsed from source and type-checked with go/types,
// resolving imports through the stdlib gc importer reading that export data —
// the same mechanism x/tools uses, minus the dependency. Everything works
// offline: only the local toolchain and build cache are consulted.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Package is one parsed, type-checked target package.
type Package struct {
	// PkgPath is the package's import path.
	PkgPath string
	// Name is the package name.
	Name string
	// Dir is the directory holding the sources.
	Dir string
	// Fset maps positions of Files.
	Fset *token.FileSet
	// Files are the parsed non-test sources, in file-name order.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// TypesInfo records type and object resolution for Files.
	TypesInfo *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string   `json:"ImportPath"`
	Name       string   `json:"Name"`
	Dir        string   `json:"Dir"`
	Export     string   `json:"Export"`
	GoFiles    []string `json:"GoFiles"`
	Imports    []string `json:"Imports"`
	DepOnly    bool     `json:"DepOnly"`
	Error      *listErr `json:"Error"`
}

// listErr carries a package loading/compilation error from `go list -e`.
type listErr struct {
	Err string `json:"Err"`
}

const listFields = "-json=ImportPath,Name,Dir,Export,GoFiles,Imports,DepOnly,Error"

// goList runs `go list -e -export -deps` in dir over the given patterns and
// decodes the JSON stream.
func goList(dir string, patterns []string) ([]listPkg, error) {
	args := append([]string{"list", "-e", "-export", "-deps", listFields}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("load: go list %s: %w\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("load: decoding go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// newImporter builds a types.Importer that resolves every import from the
// export-data files in exports (import path -> file path).
func newImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("load: no export data for %q", path)
		}
		return os.Open(file)
	})
}

// newInfo allocates the types.Info maps the analyzers actually read: Types,
// Defs, and Uses (TypeOf and ObjectOf consult only these three). Implicits,
// Selections, Scopes, and Instances are deliberately nil — go/types skips
// recording facts whose map is absent, and filling them for ten analyzers
// that never look is measurable type-check overhead across a whole module.
func newInfo() *types.Info {
	return &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
	}
}

// Patterns loads, parses, and type-checks the packages matching the go list
// patterns, resolved relative to dir ("" = current directory). Test files
// are excluded: the suite checks production sources.
func Patterns(dir string, patterns ...string) ([]*Package, error) {
	return PatternsJobs(dir, 1, patterns...)
}

// PatternsJobs is Patterns with up to jobs packages parsed and type-checked
// concurrently (jobs <= 1 means sequential). Every import — including one
// repo package importing another — resolves from the export data `go list
// -export` already compiled, so each package's check is independent of the
// others' live results and the output is identical at any jobs count; the
// work queue is still dependency-ordered so imported packages are checked
// first and the shared importer's cache is warm when dependents need it.
func PatternsJobs(dir string, jobs int, patterns ...string) ([]*Package, error) {
	list, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(list))
	var targets []listPkg
	for _, p := range list {
		if p.Error != nil {
			return nil, fmt.Errorf("load: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && len(p.GoFiles) > 0 {
			targets = append(targets, p)
		}
	}
	targets = dependencyOrder(targets)
	fset := token.NewFileSet()

	out := make([]*Package, len(targets))
	if jobs <= 1 || len(targets) <= 1 {
		imp := newImporter(fset, exports)
		for i, t := range targets {
			if out[i], err = check(fset, imp, t); err != nil {
				return nil, err
			}
		}
	} else {
		// token.FileSet serializes internally; the importer needs the same
		// treatment (its package cache is not safe for concurrent Import).
		// The imported dependency packages it returns are complete, which
		// go/types reads concurrently by design.
		imp := &lockedImporter{imp: newImporter(fset, exports)}
		if jobs > len(targets) {
			jobs = len(targets)
		}
		errs := make([]error, len(targets))
		queue := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < jobs; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range queue {
					out[i], errs[i] = check(fset, imp, targets[i])
				}
			}()
		}
		for i := range targets {
			queue <- i
		}
		close(queue)
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PkgPath < out[j].PkgPath })
	return out, nil
}

// dependencyOrder sorts targets so every target appears after the targets
// it imports (Kahn's algorithm, lexicographic among ready packages so the
// order is deterministic).
func dependencyOrder(targets []listPkg) []listPkg {
	index := make(map[string]int, len(targets))
	for i, t := range targets {
		index[t.ImportPath] = i
	}
	blocking := make([]int, len(targets))
	dependents := make(map[int][]int, len(targets))
	for i, t := range targets {
		for _, imp := range t.Imports {
			if j, ok := index[imp]; ok && j != i {
				blocking[i]++
				dependents[j] = append(dependents[j], i)
			}
		}
	}
	ready := make([]int, 0, len(targets))
	for i := range targets {
		if blocking[i] == 0 {
			ready = append(ready, i)
		}
	}
	ordered := make([]listPkg, 0, len(targets))
	for len(ready) > 0 {
		sort.Slice(ready, func(a, b int) bool {
			return targets[ready[a]].ImportPath < targets[ready[b]].ImportPath
		})
		next := ready[0]
		ready = ready[1:]
		ordered = append(ordered, targets[next])
		for _, d := range dependents[next] {
			if blocking[d]--; blocking[d] == 0 {
				ready = append(ready, d)
			}
		}
	}
	if len(ordered) != len(targets) {
		return targets // an import cycle would be a compile error anyway
	}
	return ordered
}

// lockedImporter serializes Import calls on a shared importer.
type lockedImporter struct {
	mu  sync.Mutex
	imp types.Importer
}

func (l *lockedImporter) Import(path string) (*types.Package, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.imp.Import(path)
}

// check parses and type-checks one listed package.
func check(fset *token.FileSet, imp types.Importer, t listPkg) (*Package, error) {
	files := make([]*ast.File, 0, len(t.GoFiles))
	for _, name := range t.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("load: %w", err)
		}
		files = append(files, f)
	}
	info := newInfo()
	conf := types.Config{Importer: imp}
	typesPkg, err := conf.Check(t.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("load: type-checking %s: %w", t.ImportPath, err)
	}
	return &Package{
		PkgPath:   t.ImportPath,
		Name:      t.Name,
		Dir:       t.Dir,
		Fset:      fset,
		Files:     files,
		Types:     typesPkg,
		TypesInfo: info,
	}, nil
}

// exportCache memoizes import path -> export data file across Dir calls, so
// a test binary running many testdata packages lists each stdlib dependency
// once.
var exportCache = struct {
	sync.Mutex
	m map[string]string
}{m: map[string]string{}}

// resolveExports returns export-data files for paths and all their
// transitive dependencies, consulting and filling the process-wide cache.
func resolveExports(root string, paths []string) (map[string]string, error) {
	exportCache.Lock()
	defer exportCache.Unlock()
	var missing []string
	for _, p := range paths {
		if _, ok := exportCache.m[p]; !ok && p != "unsafe" {
			missing = append(missing, p)
		}
	}
	if len(missing) > 0 {
		list, err := goList(root, missing)
		if err != nil {
			return nil, err
		}
		for _, p := range list {
			if p.Error != nil {
				return nil, fmt.Errorf("load: %s: %s", p.ImportPath, p.Error.Err)
			}
			if p.Export != "" {
				exportCache.m[p.ImportPath] = p.Export
			}
		}
	}
	out := make(map[string]string, len(exportCache.m))
	for k, v := range exportCache.m {
		out[k] = v
	}
	return out, nil
}

// ModuleRoot locates the enclosing module's root directory — the place to
// resolve "./..." from regardless of the current package's depth.
func ModuleRoot() (string, error) {
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		return "", fmt.Errorf("load: go env GOMOD: %w", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("load: not inside a module")
	}
	return filepath.Dir(gomod), nil
}

// Dir parses and type-checks the single package in dir — typically an
// analyzer's testdata directory, which the go tool itself ignores — under
// the given import path. The import path matters: analyzers scope their
// rules by package path, so testdata is checked under the real path whose
// invariants it exercises.
func Dir(dir, pkgPath string) (*Package, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, fmt.Errorf("load: %w", err)
	}
	if len(matches) == 0 {
		return nil, fmt.Errorf("load: no Go files in %s", dir)
	}
	sort.Strings(matches)
	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(matches))
	imports := map[string]bool{}
	for _, name := range matches {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("load: %w", err)
		}
		files = append(files, f)
		for _, spec := range f.Imports {
			p, err := strconv.Unquote(spec.Path.Value)
			if err != nil {
				return nil, fmt.Errorf("load: %s: bad import %s", name, spec.Path.Value)
			}
			imports[p] = true
		}
	}
	root, err := ModuleRoot()
	if err != nil {
		return nil, err
	}
	paths := make([]string, 0, len(imports))
	for p := range imports {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	exports, err := resolveExports(root, paths)
	if err != nil {
		return nil, err
	}
	info := newInfo()
	conf := types.Config{Importer: newImporter(fset, exports)}
	typesPkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("load: type-checking %s: %w", dir, err)
	}
	return &Package{
		PkgPath:   pkgPath,
		Name:      typesPkg.Name(),
		Dir:       dir,
		Fset:      fset,
		Files:     files,
		Types:     typesPkg,
		TypesInfo: info,
	}, nil
}
