package sweep

import (
	"fmt"
	"math"
)

// Mode selects how a sweep explores the design space.
type Mode int

const (
	// ModeExhaustive evaluates every design the space enumerates — the
	// classic dense sweep.
	ModeExhaustive Mode = iota
	// ModeAdaptive evaluates a coarse lattice over the space's bounding
	// box, then repeatedly subdivides only the cells whose carbon lower
	// bounds could still touch the Pareto frontier, until no cell survives
	// or the round budget runs out. See the package documentation.
	ModeAdaptive
)

// String names the mode as the CLI spells it.
func (m Mode) String() string {
	switch m {
	case ModeExhaustive:
		return "exhaustive"
	case ModeAdaptive:
		return "adaptive"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// ParseMode parses a CLI mode label.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "exhaustive":
		return ModeExhaustive, nil
	case "adaptive":
		return ModeAdaptive, nil
	default:
		return 0, fmt.Errorf("sweep: unknown mode %q (want exhaustive or adaptive)", s)
	}
}

// Plan is the single description of WHAT a sweep evaluates: the exploration
// mode, this process's shard of it, and the adaptive refinement knobs. It
// travels through sweep.Run and the coordinator unchanged, so every worker
// topology derives the identical work-list from the identical plan.
//
// The zero value is a full-space exhaustive sweep.
type Plan struct {
	// Mode selects exhaustive or adaptive exploration.
	Mode Mode
	// Shard, when non-zero, restricts the run to its contiguous i/N slice
	// of the work-list (the full enumeration in exhaustive mode, the
	// current round's lattice points in adaptive mode). It subsumes the
	// deprecated Options.Shard field.
	Shard Shard

	// Tolerance is the adaptive mode's relative pruning slack: a cell is
	// discarded when some frontier point comes within Tolerance of the
	// frontier's extent of dominating the cell's best possible corner.
	// Larger values prune harder and finish earlier at the price of a
	// correspondingly looser frontier. Must be in [0, 1); the zero value
	// means the default of 0.01.
	Tolerance float64
	// MaxRounds bounds the number of subdivision rounds after the coarse
	// pass (default 3). Refinement also stops early when no cell survives
	// pruning.
	MaxRounds int
	// CoarsePointsPerDim is the number of lattice points per free axis in
	// the round-0 coarse pass (default 5, minimum 2).
	CoarsePointsPerDim int
}

// DefaultTolerance, DefaultMaxRounds, and DefaultCoarsePointsPerDim are the
// adaptive-mode defaults a zero Plan resolves to.
const (
	DefaultTolerance          = 0.01
	DefaultMaxRounds          = 3
	DefaultCoarsePointsPerDim = 5
)

// Normalized validates the plan and fills the adaptive defaults in — the
// same normalization sweep.Run applies internally. Exported for layers (the
// coordinator, the CLI) that need to validate a plan before building any
// work.
func (p Plan) Normalized() (Plan, error) { return p.withDefaults() }

// withDefaults validates the plan and fills adaptive defaults in.
func (p Plan) withDefaults() (Plan, error) {
	if p.Mode != ModeExhaustive && p.Mode != ModeAdaptive {
		return Plan{}, fmt.Errorf("sweep: unknown plan mode %d", int(p.Mode))
	}
	if !p.Shard.IsZero() {
		if err := p.Shard.validate(); err != nil {
			return Plan{}, err
		}
	}
	if p.Mode == ModeExhaustive {
		// Silently ignoring adaptive knobs under the exhaustive mode would
		// hide a forgotten Mode; reject the combination instead.
		if p.Tolerance != 0 || p.MaxRounds != 0 || p.CoarsePointsPerDim != 0 {
			return Plan{}, fmt.Errorf("sweep: Tolerance/MaxRounds/CoarsePointsPerDim require ModeAdaptive")
		}
		return p, nil
	}
	if math.IsNaN(p.Tolerance) || math.IsInf(p.Tolerance, 0) || p.Tolerance < 0 || p.Tolerance >= 1 {
		return Plan{}, fmt.Errorf("sweep: tolerance %v out of [0, 1)", p.Tolerance)
	}
	if p.Tolerance == 0 {
		p.Tolerance = DefaultTolerance
	}
	switch {
	case p.MaxRounds == 0:
		p.MaxRounds = DefaultMaxRounds
	case p.MaxRounds < 0:
		return Plan{}, fmt.Errorf("sweep: negative MaxRounds %d", p.MaxRounds)
	}
	switch {
	case p.CoarsePointsPerDim == 0:
		p.CoarsePointsPerDim = DefaultCoarsePointsPerDim
	case p.CoarsePointsPerDim < 2:
		return Plan{}, fmt.Errorf("sweep: CoarsePointsPerDim %d invalid: need 0 (default) or at least 2", p.CoarsePointsPerDim)
	}
	return p, nil
}
