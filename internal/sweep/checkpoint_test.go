package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"carbonexplorer/internal/explorer"
)

// TestStatusRLERoundTrip: encode/decode are inverses over representative
// status shapes.
func TestStatusRLERoundTrip(t *testing.T) {
	cases := []string{
		"",
		"D",
		"P",
		"DDDD",
		"DDDDFPP",
		"DFDFDFDF",
		"PPPPPPPPPPDX",
		strings.Repeat("D", 1000) + "F" + strings.Repeat("P", 999),
	}
	for _, c := range cases {
		enc := encodeStatusRLE([]byte(c))
		dec, err := decodeStatusRLE(enc)
		if err != nil {
			t.Fatalf("decode(%q): %v", enc, err)
		}
		if string(dec) != c {
			t.Fatalf("round trip changed status: %q -> %q -> %q", c, enc, dec)
		}
	}
	if got := encodeStatusRLE([]byte("DDDDFPP")); got != "4D1F2P" {
		t.Fatalf("encodeStatusRLE(DDDDFPP) = %q, want 4D1F2P", got)
	}
}

// TestStatusRLEMultiMillionDesigns is the ROADMAP compaction scenario: a
// checkpoint status for a multi-million-design space must round-trip
// exactly, and the realistic shape — one long done prefix, a few scattered
// failures, a long pending tail — must collapse to a few dozen bytes
// instead of one byte per design.
func TestStatusRLEMultiMillionDesigns(t *testing.T) {
	const n = 3_000_000
	status := bytes.Repeat([]byte{statusDone}, n)
	// A sweep mid-flight: done prefix, two failures, pending tail.
	for i := n / 2; i < n; i++ {
		status[i] = statusPending
	}
	status[n/4] = statusFailedOnce
	status[n/3] = statusFailedPerm

	enc := encodeStatusRLE(status)
	if len(enc) > 100 {
		t.Fatalf("RLE of a %d-design sweep took %d bytes; compaction failed", n, len(enc))
	}
	dec, err := decodeStatusRLE(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !bytes.Equal(dec, status) {
		t.Fatalf("multi-million round trip corrupted the status string")
	}

	// Worst case — maximally alternating statuses — still round-trips.
	alt := make([]byte, 1_000_000)
	runes := []byte{statusDone, statusPending, statusFailedOnce, statusFailedPerm}
	for i := range alt {
		alt[i] = runes[i%len(runes)]
	}
	dec, err = decodeStatusRLE(encodeStatusRLE(alt))
	if err != nil {
		t.Fatalf("decode alternating: %v", err)
	}
	if !bytes.Equal(dec, alt) {
		t.Fatal("alternating round trip corrupted the status string")
	}
}

// TestStatusRLERejectsMalformed: corrupt encodings must fail loudly.
func TestStatusRLERejectsMalformed(t *testing.T) {
	for _, enc := range []string{
		"D",                      // rune without count
		"4",                      // count without rune
		"4D3",                    // trailing digits
		"0D",                     // zero-length run
		"-1D",                    // negative run
		"4Z",                     // unknown status rune
		"4D 2P",                  // stray byte
		"999999999999999999999D", // overflows int
		"999999999D",             // exceeds maxStatusLen
	} {
		if _, err := decodeStatusRLE(enc); err == nil {
			t.Fatalf("decodeStatusRLE(%q) accepted", enc)
		}
	}
}

// TestCheckpointV1StillLoads: a version-1 checkpoint (plain status string,
// no shard/designs fields, no failure indices) written by the previous
// release must resume cleanly, and the very next save must rewrite it as
// version 2 with an RLE status.
func TestCheckpointV1StillLoads(t *testing.T) {
	in := testInputs(t)
	space := testSpace(in)
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "sweep.json")

	clean, err := Run(context.Background(), in, space, explorer.RenewablesBatteryCAS, Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Fabricate a v1 file recording a half-done sweep: the first half of
	// the enumeration done, with the fold state of exactly those designs.
	designs := space.Enumerate(explorer.RenewablesBatteryCAS, in.AvgDemandMW())
	half := len(designs) / 2
	var best *explorer.Outcome
	var frontier explorer.ParetoSet
	for _, d := range designs[:half] {
		o, err := in.Evaluate(d)
		if err != nil {
			t.Fatal(err)
		}
		if best == nil || betterOutcome(o, *best) {
			best = &o
		}
		frontier.Add(o)
	}
	v1 := checkpointFile{
		Version:   checkpointVersionV1,
		SpaceHash: sweepHash(in, explorer.RenewablesBatteryCAS, designs),
		Site:      in.Site.ID,
		Strategy:  int(explorer.RenewablesBatteryCAS),
		Status:    strings.Repeat("D", half) + strings.Repeat("P", len(designs)-half),
	}
	bo := saveOutcome(*best)
	v1.Best = &bo
	for _, o := range frontier.Frontier() {
		v1.Frontier = append(v1.Frontier, saveOutcome(o))
	}
	raw, err := json.Marshal(v1)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(ckpt, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	res, err := Run(context.Background(), in, space, explorer.RenewablesBatteryCAS,
		Options{Checkpoint: CheckpointOptions{Path: ckpt, Resume: true}})
	if err != nil {
		t.Fatalf("resuming a v1 checkpoint: %v", err)
	}
	if res.Report.Restored != half {
		t.Fatalf("v1 resume restored %d designs, want %d", res.Report.Restored, half)
	}
	if !sameOutcome(res.Optimal, clean.Optimal) {
		t.Fatalf("v1 resume optimum differs: %+v vs %+v", res.Optimal.Design, clean.Optimal.Design)
	}

	// The rewritten file is version 2 with an RLE status.
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	var ck checkpointFile
	if err := json.Unmarshal(data, &ck); err != nil {
		t.Fatal(err)
	}
	if ck.Version != checkpointVersion {
		t.Fatalf("resumed v1 file rewritten as version %d, want %d", ck.Version, checkpointVersion)
	}
	if ck.Designs != len(designs) {
		t.Fatalf("v2 rewrite records %d designs, want %d", ck.Designs, len(designs))
	}
	status, err := ck.statusBytes()
	if err != nil {
		t.Fatalf("v2 rewrite has undecodable status: %v", err)
	}
	if len(status) != len(designs) {
		t.Fatalf("v2 status decodes to %d designs, want %d", len(status), len(designs))
	}
	if len(ck.Status) >= len(designs) {
		t.Fatalf("v2 status (%d bytes) is not compressed below one byte per design (%d)", len(ck.Status), len(designs))
	}
}

// TestCheckpointV1GarbageStatusRejected: a v1 file with unknown status
// runes is a mismatch, not a crash or a silent skip.
func TestCheckpointV1GarbageStatusRejected(t *testing.T) {
	in := testInputs(t)
	space := testSpace(in)
	ckpt := filepath.Join(t.TempDir(), "sweep.json")
	designs := space.Enumerate(explorer.RenewablesBatteryCAS, in.AvgDemandMW())

	v1 := checkpointFile{
		Version:   checkpointVersionV1,
		SpaceHash: sweepHash(in, explorer.RenewablesBatteryCAS, designs),
		Site:      in.Site.ID,
		Strategy:  int(explorer.RenewablesBatteryCAS),
		Status:    strings.Repeat("?", len(designs)),
	}
	raw, _ := json.Marshal(v1)
	if err := os.WriteFile(ckpt, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Run(context.Background(), in, space, explorer.RenewablesBatteryCAS,
		Options{Checkpoint: CheckpointOptions{Path: ckpt, Resume: true}})
	if !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("garbage v1 status: want ErrCheckpointMismatch, got %v", err)
	}
}
