package sweep

import (
	"context"
	"fmt"
	"hash/fnv"
	"math"

	"carbonexplorer/internal/explorer"
)

// The adaptive mode (Plan.Mode == ModeAdaptive) replaces the exhaustive
// enumeration with coarse-to-fine refinement: round 0 evaluates a coarse
// lattice over the space's bounding box, and each later round subdivides
// only the cells whose carbon lower bounds (explorer.CellModel) could still
// touch the Pareto frontier, evaluating just the newly created lattice
// points. The work-list of every round is a pure function of (space, plan,
// prior-round frontier), so any worker topology — single process, -shard
// slices, file leases, network leases — derives the identical round
// work-list, fingerprinted by the identical round hash, and converges to
// byte-identical results.

// adaptiveModeLabel is the Mode string version-3 checkpoints carry.
const adaptiveModeLabel = "adaptive"

// AdaptiveProgress reports how far an adaptive sweep's refinement got.
type AdaptiveProgress struct {
	// Round is the last refinement round executed (0 is the coarse pass).
	Round int
	// RoundEvals is the number of successfully evaluated designs per round,
	// in round order, including the (possibly partial) last round.
	RoundEvals []int
	// Cells is the number of cells in the last executed round's work-list.
	Cells int
	// Survivors is the number of cells that survived frontier pruning after
	// the last completed round (0 once refinement has converged).
	Survivors int
	// Converged reports whether refinement finished: no cell survived
	// pruning, or the round budget was spent. A false value means the run
	// stopped mid-refinement (cancelled, or a shard slice waiting for its
	// siblings) and can be resumed.
	Converged bool
	// Tolerance echoes the plan's effective pruning tolerance.
	Tolerance float64
}

// adaptiveMeta is the round context a Job carries when it is one round of an
// adaptive sweep: everything the checkpoint writer needs to stamp version-3
// round state, plus the cumulative fold seeds from prior rounds.
type adaptiveMeta struct {
	baseHash string
	round    int
	cells    []explorer.Cell
	prior    savedPrior

	// seedBest and seedFrontier are the cumulative optimum and frontier of
	// all prior rounds, folded in before any evaluation (and before any
	// restore — a checkpoint written by a seeded run already includes them,
	// and re-folding is idempotent).
	seedBest     *explorer.Outcome
	seedFrontier []explorer.Outcome
}

// stamp writes the version-3 round state onto a checkpoint file.
func (m *adaptiveMeta) stamp(ck *checkpointFile) {
	ck.Version = checkpointVersionV3
	ck.Mode = adaptiveModeLabel
	ck.BaseHash = m.baseHash
	ck.Round = m.round
	ck.Cells = savedCells(m.cells)
	if len(m.prior.Evals) > 0 {
		p := m.prior
		ck.Prior = &p
	}
}

func savedCells(cells []explorer.Cell) []savedCell {
	out := make([]savedCell, len(cells))
	for i, c := range cells {
		out[i] = savedCell{Idx: c.Idx}
	}
	return out
}

func cellsFromSaved(saved []savedCell) []explorer.Cell {
	out := make([]explorer.Cell, len(saved))
	for i, s := range saved {
		out[i] = explorer.Cell{Idx: s.Idx}
	}
	return out
}

// adaptiveBaseHash fingerprints the refinement as a whole: the site, the
// strategy, the input fingerprint, the bounding box geometry, and the plan
// knobs that shape every round. Two processes agree on every round's
// work-list exactly when their base hashes agree.
func adaptiveBaseHash(in *explorer.Inputs, strategy explorer.Strategy, g explorer.CellGrid, plan Plan) string {
	h := fnv.New64a()
	buf := make([]byte, 8)
	writeUint64 := func(v uint64) {
		for i := range buf {
			buf[i] = byte(v >> (8 * i))
		}
		//carbonlint:allow errwrap hash writers (fnv) are documented never to return an error
		h.Write(buf)
	}
	write := func(v float64) { writeUint64(math.Float64bits(v)) }
	//carbonlint:allow errwrap hash.Hash.Write is documented never to return an error
	h.Write([]byte(in.Site.ID))
	writeUint64(uint64(strategy))
	writeUint64(uint64(in.Demand.Len()))
	write(in.AvgDemandMW())
	for a := 0; a < explorer.NumAxes; a++ {
		write(g.Lo[a])
		write(g.Hi[a])
		free := uint64(0)
		if g.Free[a] {
			free = 1
		}
		writeUint64(free)
	}
	write(g.DoD)
	write(g.FlexibleRatio)
	writeUint64(uint64(g.Coarse))
	write(plan.Tolerance)
	writeUint64(uint64(plan.MaxRounds))
	return fmt.Sprintf("%016x", h.Sum64())
}

// adaptiveRoundHash fingerprints one round's concrete work-list under the
// refinement's base hash. It plays the SpaceHash role for the round: resume,
// merge, and coordination handshakes validate against it unchanged.
func adaptiveRoundHash(base string, round int, cells []explorer.Cell, designs []explorer.Design) string {
	h := fnv.New64a()
	buf := make([]byte, 8)
	writeUint64 := func(v uint64) {
		for i := range buf {
			buf[i] = byte(v >> (8 * i))
		}
		//carbonlint:allow errwrap hash writers (fnv) are documented never to return an error
		h.Write(buf)
	}
	write := func(v float64) { writeUint64(math.Float64bits(v)) }
	//carbonlint:allow errwrap hash.Hash.Write is documented never to return an error
	h.Write([]byte(base))
	writeUint64(uint64(round))
	writeUint64(uint64(len(cells)))
	for _, c := range cells {
		for a := 0; a < explorer.NumAxes; a++ {
			writeUint64(uint64(int64(c.Idx[a])))
		}
	}
	writeUint64(uint64(len(designs)))
	for _, d := range designs {
		write(d.WindMW)
		write(d.SolarMW)
		write(d.BatteryMWh)
		write(d.DoD)
		writeUint64(uint64(d.BatteryTech))
		write(d.FlexibleRatio)
		write(d.ExtraCapacityFrac)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// AdaptiveEval executes one refinement round's job and returns its result.
// The single-process driver runs the job directly; the coordinator fans the
// round out across workers. The returned Result must be cumulative (the job
// seeds guarantee this) and complete exactly when Report.Skipped and
// Report.OutOfShard are both zero.
type AdaptiveEval func(ctx context.Context, job *Job, round int) (Result, error)

// runAdaptiveLocal is the single-process adaptive driver: each round is one
// (possibly sharded) Job.run against the caller's checkpoint path.
func runAdaptiveLocal(ctx context.Context, in *explorer.Inputs, space explorer.Space, strategy explorer.Strategy, opts Options) (Result, error) {
	firstRound := true
	eval := func(ctx context.Context, job *Job, round int) (Result, error) {
		ro := opts
		// Only the first executed round may restore the checkpoint file:
		// later rounds carry a different round hash than the file on disk
		// (which the first periodic write then overwrites).
		ro.Checkpoint.Resume = opts.Checkpoint.Resume && firstRound
		firstRound = false
		return job.run(ctx, in, ro)
	}
	return RunAdaptiveRounds(ctx, in, space, strategy, opts, eval)
}

// RunAdaptiveRounds drives an adaptive sweep's refinement loop over any
// round executor: derive the round work-list, evaluate it through eval,
// prune cells against the cumulative frontier, subdivide the survivors, and
// repeat until no cell survives or the plan's round budget is spent. The
// final converged checkpoint is written by this driver itself — as a pure
// function of the deterministic round results — so every worker topology
// publishes byte-identical final state.
//
// It is exported for the coordinator (internal/coordinator), which supplies
// an eval that fans each round out across workers or a lease fleet; all
// other callers reach it through Run with Plan.Mode == ModeAdaptive.
func RunAdaptiveRounds(ctx context.Context, in *explorer.Inputs, space explorer.Space, strategy explorer.Strategy, opts Options, eval AdaptiveEval) (Result, error) {
	opts, err := opts.resolve()
	if err != nil {
		return Result{}, err
	}
	plan := opts.Plan
	if plan.Mode != ModeAdaptive {
		return Result{}, fmt.Errorf("sweep: RunAdaptiveRounds needs Plan.Mode == ModeAdaptive")
	}
	g, err := explorer.NewCellGrid(space, strategy, in.AvgDemandMW(), plan.CoarsePointsPerDim)
	if err != nil {
		return Result{}, err
	}
	model := explorer.NewCellModel(in, g)
	base := adaptiveBaseHash(in, strategy, g, plan)

	round := 0
	cells := g.CoarseCells()
	var prior savedPrior
	// resumedAny and restoredSoFar carry resume accounting across rounds:
	// the per-round Result only knows about its own restore, but the
	// refinement-level Result must report everything that came from a
	// checkpoint rather than a fresh evaluation.
	resumedAny := false
	restoredSoFar := 0

	// Fast-forward: a version-3 checkpoint at the final path tells us which
	// round the interrupted refinement had reached (its mid-round progress
	// is then restored by the round's own resume) — or that the refinement
	// already converged.
	finalPath := opts.Checkpoint.Path
	if opts.Checkpoint.Resume && finalPath != "" {
		ck, err := loadCheckpoint(finalPath)
		switch {
		case err != nil && isNotExist(err):
			// Fresh refinement.
		case err != nil:
			return Result{}, err
		case ck.Version != checkpointVersionV3:
			return Result{}, fmt.Errorf("%w: checkpoint at %s is not an adaptive (version 3) checkpoint",
				ErrCheckpointMismatch, finalPath)
		case ck.BaseHash != base:
			return Result{}, fmt.Errorf("%w: refinement base hash %s vs %s",
				ErrCheckpointMismatch, ck.BaseHash, base)
		default:
			round = ck.Round
			cells = cellsFromSaved(ck.Cells)
			if ck.Prior != nil {
				prior = *ck.Prior
			}
			// Every prior round's evaluation came out of the file, not out
			// of this process.
			resumedAny = true
			for _, e := range prior.Evals {
				restoredSoFar += e
			}
			if ck.Converged {
				res, err := resultFromConverged(ck, strategy, plan)
				if err != nil {
					return Result{}, err
				}
				return res, nil
			}
		}
	}

	var seedBest *explorer.Outcome
	var seedFrontier []explorer.Outcome
	for {
		worklist := g.RoundPoints(cells, round)
		if len(worklist) == 0 {
			// Every axis pinned (or no cells): nothing to refine further.
			return Result{}, fmt.Errorf("sweep: adaptive round %d has no lattice points — space has no free dimensions to refine", round)
		}
		job := &Job{
			Strategy: strategy,
			Designs:  worklist,
			hash:     adaptiveRoundHash(base, round, cells, worklist),
			meta: &adaptiveMeta{
				baseHash:     base,
				round:        round,
				cells:        cells,
				prior:        prior,
				seedBest:     seedBest,
				seedFrontier: seedFrontier,
			},
		}
		res, evalErr := eval(ctx, job, round)
		roundEvaluated := res.Report.Evaluated
		roundRestored := res.Report.Restored
		roundRetried := res.Report.Retried
		roundRecovered := res.Report.Recovered
		roundFailures := res.Report.Failures
		progress := &AdaptiveProgress{
			Round:      round,
			RoundEvals: appendInts(prior.Evals, roundEvaluated),
			Cells:      len(cells),
			Tolerance:  plan.Tolerance,
		}
		res.Adaptive = progress
		addPriorAccounting(&res, prior)
		res.Report.Restored += restoredSoFar
		res.Resumed = res.Resumed || resumedAny
		if roundEvaluated == 0 && roundRestored == 0 && seedBest != nil {
			// The round folded nothing (interrupted before any worker
			// checkpointed): surface the prior rounds' cumulative optimum
			// and frontier instead of an empty partial result.
			res.Optimal = *seedBest
			res.Frontier = seedFrontier
		}
		if evalErr != nil {
			return res, evalErr
		}
		if res.Report.Skipped > 0 || res.Report.OutOfShard > 0 {
			// A shard slice finished its part of the round; siblings (and a
			// merge) must complete it before refinement can advance.
			return res, nil
		}

		// Round complete: prune against the cumulative frontier and decide
		// whether to subdivide. The slacks are absolute fractions of the
		// frontier's extent, recomputed per round — still a pure function
		// of the prior-round frontier.
		opSlack, emSlack := frontierSlack(res.Frontier, plan.Tolerance)
		survivors := cells[:0:0]
		for _, c := range cells {
			opLB, emLB := model.Bounds(c, round)
			if explorer.Reachable(opLB, emLB, res.Frontier, opSlack, emSlack) {
				survivors = append(survivors, c)
			}
		}
		progress.Survivors = len(survivors)
		if len(survivors) == 0 || round >= plan.MaxRounds {
			progress.Converged = true
			if finalPath != "" {
				if err := writeConvergedCheckpoint(finalPath, in, job, res, prior); err != nil {
					return res, err
				}
			}
			return res, nil
		}

		// Advance: the completed round's accounting moves into the prior
		// block, its frontier seeds the next round.
		prior.Evals = append(prior.Evals, roundEvaluated)
		prior.Retried += roundRetried
		prior.Recovered += roundRecovered
		resumedAny = resumedAny || roundRestored > 0
		restoredSoFar += roundRestored
		prior.Failures = append(prior.Failures, failuresToSaved(roundFailures)...)
		best := res.Optimal
		seedBest = &best
		seedFrontier = res.Frontier
		cells = g.SubdivideAll(survivors)
		round++
	}
}

// appendInts returns a copy of prior with v appended (never aliasing prior's
// backing array, which outlives the call).
func appendInts(prior []int, v int) []int {
	out := make([]int, 0, len(prior)+1)
	out = append(out, prior...)
	return append(out, v)
}

// addPriorAccounting folds completed prior rounds into a round Result so
// callers see cumulative refinement totals.
func addPriorAccounting(res *Result, prior savedPrior) {
	for _, e := range prior.Evals {
		res.Report.Evaluated += e
	}
	res.Report.Retried += prior.Retried
	res.Report.Recovered += prior.Recovered
	if len(prior.Failures) > 0 {
		merged := make([]explorer.DesignError, 0, len(prior.Failures)+len(res.Report.Failures))
		for _, f := range prior.Failures {
			merged = append(merged, explorer.DesignError{
				Design: f.Design,
				Err:    fmt.Errorf("sweep: prior-round failure: %s", f.Error),
			})
		}
		res.Report.Failures = append(merged, res.Report.Failures...)
	}
}

// frontierSlack derives the absolute pruning slacks from the frontier's
// extent. Absolute slack matters: large parts of a renewable-rich space have
// an operational lower bound of exactly zero, where a multiplicative slack
// would vanish and nothing could ever be pruned on that coordinate.
func frontierSlack(frontier []explorer.Outcome, tol float64) (opSlack, emSlack float64) {
	var maxOp, maxEm float64
	for _, q := range frontier {
		if float64(q.Operational) > maxOp {
			maxOp = float64(q.Operational)
		}
		if float64(q.Embodied) > maxEm {
			maxEm = float64(q.Embodied)
		}
	}
	return tol * maxOp, tol * maxEm
}

func failuresToSaved(failures []explorer.DesignError) []savedFailure {
	if len(failures) == 0 {
		return nil
	}
	out := make([]savedFailure, len(failures))
	for i, f := range failures {
		out[i] = savedFailure{Design: f.Design, Index: -1, Error: f.Err.Error(), Permanent: true}
	}
	return out
}

// writeConvergedCheckpoint publishes the refinement's final state. It is
// constructed here, from the deterministic round result, rather than by the
// topology-specific round writers — which is what makes the final file
// byte-identical whether the rounds ran in one process, across -shard
// slices, or under a file or network lease fleet. The final file is always
// unsharded and marked converged.
func writeConvergedCheckpoint(path string, in *explorer.Inputs, job *Job, res Result, prior savedPrior) error {
	m := job.meta
	status := make([]byte, len(job.Designs))
	for i := range status {
		status[i] = statusDone
	}
	index := make(map[explorer.Design]int, len(job.Designs))
	for i, d := range job.Designs {
		index[d] = i
	}
	ck := &checkpointFile{
		Version:   checkpointVersionV3,
		SpaceHash: job.hash,
		Site:      in.Site.ID,
		Strategy:  int(job.Strategy),
		Designs:   len(job.Designs),
		Retried:   res.Report.Retried - prior.Retried,
		Recovered: res.Report.Recovered - prior.Recovered,
		Mode:      adaptiveModeLabel,
		BaseHash:  m.baseHash,
		Round:     m.round,
		Cells:     savedCells(m.cells),
		Converged: true,
	}
	if len(prior.Evals) > 0 {
		p := prior
		ck.Prior = &p
	}
	// Failures beyond the prior rounds' belong to the final round; map them
	// onto the round work-list (walking the deterministic failure slice, not
	// a map, keeps the file byte-stable).
	for _, f := range res.Report.Failures {
		i, ok := index[f.Design]
		if !ok {
			continue // a prior-round failure: recorded in ck.Prior
		}
		status[i] = statusFailedPerm
		ck.Failures = append(ck.Failures, savedFailure{
			Design:    f.Design,
			Index:     i,
			Error:     f.Err.Error(),
			Permanent: true,
		})
	}
	sortFailures(ck.Failures)
	ck.Status = encodeStatusRLE(status)
	if res.Report.Evaluated > 0 {
		so := saveOutcome(res.Optimal)
		ck.Best = &so
	}
	for _, o := range res.Frontier {
		ck.Frontier = append(ck.Frontier, saveOutcome(o))
	}
	return ck.save(path)
}

// resultFromConverged reconstructs the adaptive Result recorded by a
// converged final checkpoint, so re-running a finished refinement returns
// the answer without evaluating anything.
func resultFromConverged(ck *checkpointFile, strategy explorer.Strategy, plan Plan) (Result, error) {
	status, err := ck.statusBytes()
	if err != nil {
		return Result{}, err
	}
	res := Result{Strategy: strategy, Resumed: true}
	roundEvals := 0
	for _, s := range status {
		if s == statusDone {
			roundEvals++
		}
	}
	res.Report.Evaluated = roundEvals
	res.Report.Restored = roundEvals
	res.Report.Retried = ck.Retried
	res.Report.Recovered = ck.Recovered
	var prior savedPrior
	if ck.Prior != nil {
		prior = *ck.Prior
	}
	for _, f := range ck.Failures {
		res.Report.Failures = append(res.Report.Failures, explorer.DesignError{
			Design: f.Design,
			Err:    fmt.Errorf("sweep: restored failure: %s", f.Error),
		})
	}
	if ck.Best != nil {
		res.Optimal = ck.Best.outcome()
	}
	for _, o := range ck.Frontier {
		res.Frontier = append(res.Frontier, o.outcome())
	}
	res.Adaptive = &AdaptiveProgress{
		Round:      ck.Round,
		RoundEvals: appendInts(prior.Evals, roundEvals),
		Cells:      len(ck.Cells),
		Converged:  true,
		Tolerance:  plan.Tolerance,
	}
	addPriorAccounting(&res, prior)
	// Nothing was evaluated by this process: the whole refinement was
	// reconstructed from the converged file.
	res.Report.Restored = res.Report.Evaluated
	return res, nil
}
