package sweep

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"runtime"
	"strconv"
	"sync"
	"time"

	"carbonexplorer/internal/explorer"
	"carbonexplorer/internal/timeseries"
)

// CheckpointOptions configures checkpoint persistence for a sweep. The
// zero value disables checkpointing.
type CheckpointOptions struct {
	// Path, when non-empty, persists a versioned JSON checkpoint there
	// after every Every evaluated designs, on cancellation, and on
	// completion. See the package documentation for the format.
	Path string
	// Every is the number of evaluated designs between periodic checkpoint
	// writes (default 256). Checkpoints also always flush at batch
	// boundaries, on cancellation, and at the end of the sweep.
	Every int
	// Resume, when set, loads Path before sweeping and skips every design
	// it records as done — their contribution to the optimum and frontier
	// is restored from the file instead of re-evaluated. A missing file
	// starts a fresh sweep; a file from a different sweep (site, space,
	// strategy, or inputs changed) fails with ErrCheckpointMismatch.
	Resume bool
}

// NoRetries disables the retry pass entirely: a single failure is final.
// See Options.Retries.
const NoRetries = -1

// Options configures a streaming sweep. The zero value is a sensible
// default: bounded batches, retry-once for failed designs, no
// checkpointing.
type Options struct {
	// BatchSize is the number of designs evaluated and folded per batch —
	// the peak number of Outcomes the engine holds at once (default 64).
	// Larger batches increase parallel occupancy slightly; memory stays
	// O(BatchSize + frontier), independent of the grid size.
	BatchSize int
	// Checkpoint configures checkpoint persistence; the zero value runs
	// without one.
	Checkpoint CheckpointOptions
	// Retries is how many times a failed design is re-evaluated before it
	// is permanently excluded from the optimum. The zero value means the
	// default of one retry — transient faults (a flaky data backend, an
	// injected chaos error) should not permanently discard a grid point.
	// NoRetries (or any negative value) disables retries so a single
	// failure is final.
	Retries int
	// RetryBackoff is the base delay before each retry pass: attempt k
	// waits base<<(k-1) with deterministic jitter (seeded from the space
	// hash, see BackoffDelay) before re-evaluating, so a transiently
	// failing backend gets breathing room instead of an immediate
	// re-hammering — and an interrupted-and-resumed sweep re-derives the
	// exact same schedule. The zero value means the default of 25ms; a
	// negative value restores immediate retries. Delays cap at 100× the
	// base.
	RetryBackoff time.Duration
	// Shard, when non-zero, restricts this run to its contiguous i/N slice
	// of the enumeration (Shard.Bounds over the full design list). The
	// checkpoint still covers the whole space — designs outside the slice
	// stay pending — so any set of shard checkpoints over the same space
	// can be folded with MergeCheckpoints into the single-process result.
	// The space hash is of the FULL space, so shards of the same sweep
	// agree on it and mismatched shards are rejected on resume and merge.
	//
	// Deprecated: set Plan.Shard instead. Plan is the single description of
	// what a sweep evaluates; this field remains honoured for one release
	// (a non-zero Plan.Shard wins) and will then be removed. See the
	// migration table in DESIGN.md.
	Shard Shard
	// Plan describes WHAT the sweep evaluates: the exploration mode
	// (exhaustive or adaptive), the shard slice, and the adaptive knobs.
	// The zero value is a full-space exhaustive sweep, so existing callers
	// are unaffected.
	Plan Plan
}

func (o Options) withDefaults() Options {
	if o.BatchSize <= 0 {
		o.BatchSize = 64
	}
	if o.Checkpoint.Every <= 0 {
		o.Checkpoint.Every = 256
	}
	switch {
	case o.Retries == 0:
		o.Retries = 1
	case o.Retries < 0:
		o.Retries = 0
	}
	switch {
	case o.RetryBackoff == 0:
		o.RetryBackoff = 25 * time.Millisecond
	case o.RetryBackoff < 0:
		o.RetryBackoff = 0
	}
	return o
}

// Report accounts for every design of a streaming sweep.
type Report struct {
	// Evaluated is the number of designs evaluated successfully, including
	// designs restored from a checkpoint.
	Evaluated int
	// Restored is how many of Evaluated were restored from the checkpoint
	// rather than re-evaluated in this run.
	Restored int
	// Skipped is the number of in-shard designs never evaluated because the
	// sweep was cancelled first. Resuming from the checkpoint picks them
	// up.
	Skipped int
	// OutOfShard is the number of designs outside this run's shard slice
	// that no prior checkpoint accounted for. Other shards (or a resume of
	// the merged checkpoint) evaluate them; zero for unsharded runs.
	OutOfShard int
	// Retried is the number of design re-evaluations performed by the
	// retry pass (accumulated across resumed runs).
	Retried int
	// Recovered is how many retried designs succeeded on their second
	// attempt and were folded into the optimum after all.
	Recovered int
	// Failures lists every design currently in a failed state with its
	// latest error. After a completed sweep with retries enabled these are
	// all permanent (failed twice); after an interrupted sweep the list may
	// include designs still eligible for retry on resume.
	Failures []explorer.DesignError
	// MaxResident is the peak number of evaluated Outcomes the engine held
	// in memory at any moment — the bounded-memory witness. It never
	// exceeds the batch size, no matter how dense the design grid is.
	MaxResident int
}

// Result is the outcome of a streaming sweep.
type Result struct {
	// Strategy echoes the swept strategy.
	Strategy explorer.Strategy
	// Optimal is the outcome with minimum total carbon over all evaluated
	// designs; ties break toward higher coverage, exactly as in
	// explorer.Search. Its BatterySoC trace is empty: the streaming path
	// drops per-hour traces (re-Evaluate the design to recover one).
	Optimal explorer.Outcome
	// Frontier is the Pareto frontier in the (operational, embodied) plane
	// over all evaluated designs, sorted by increasing embodied carbon —
	// identical to explorer.ParetoFrontier over a materialized sweep.
	Frontier []explorer.Outcome
	// Report accounts for every design: evaluated, restored, failed,
	// retried, or skipped.
	Report Report
	// Resumed reports whether any prior progress was restored from a
	// checkpoint file.
	Resumed bool
	// Workers breaks the sweep down per coordinated worker, one entry per
	// worker in worker order. Plain Run leaves it empty; the coordinator
	// (internal/coordinator) fills it in.
	Workers []WorkerProgress
	// Adaptive reports the refinement progress of an adaptive sweep
	// (Plan.Mode == ModeAdaptive); nil for exhaustive sweeps.
	Adaptive *AdaptiveProgress
}

// WorkerProgress summarizes one coordinated worker's contribution to a
// sweep: how many leases it completed, how many of those it stole from an
// expired owner, and how many designs it touched. The coordinator attaches
// one entry per worker to Result.Workers.
type WorkerProgress struct {
	// Worker is the worker's owner label, as written into lease files.
	Worker string `json:"worker"`
	// Leases is the number of leases the worker completed.
	Leases int `json:"leases"`
	// Stolen is how many of those leases were reclaimed from an owner
	// whose heartbeat had expired.
	Stolen int `json:"stolen"`
	// Evaluated is the number of designs the worker evaluated successfully
	// (excluding designs restored from a stolen lease's checkpoint).
	Evaluated int `json:"evaluated"`
	// Failed is the number of designs left in a failed state by the
	// worker's leases.
	Failed int `json:"failed"`
}

// Run executes a streaming, checkpointable, retrying sweep of the space
// under the strategy.
//
// Unlike explorer.Search, Run never materializes the full outcome set: it
// evaluates designs in bounded batches and folds each batch into the running
// optimum and Pareto frontier, so memory stays flat no matter how dense the
// grid is. With a checkpoint configured, progress persists across process
// deaths: an interrupted sweep resumed with Options.Checkpoint.Resume converges to the
// same optimum and frontier as an uninterrupted run.
//
// With Options.Shard set, the run evaluates only its contiguous i/N slice
// of the enumeration; per-shard checkpoints over the same space fold into
// the single-process result with MergeCheckpoints. An empty shard slice
// (more shards than designs) completes immediately with nothing evaluated.
//
// Failure semantics match explorer.SearchContext: a failing or panicking
// design is excluded from the optimum (after Options.Retries retry passes)
// and recorded in the report; only if every design fails does Run return a
// wrapped explorer.ErrAllDesignsFailed. On cancellation the partial result
// is returned alongside ctx's error, after a final checkpoint write.
func Run(ctx context.Context, in *explorer.Inputs, space explorer.Space, strategy explorer.Strategy, opts Options) (Result, error) {
	opts, err := opts.resolve()
	if err != nil {
		return Result{}, err
	}
	if opts.Plan.Mode == ModeAdaptive {
		return runAdaptiveLocal(ctx, in, space, strategy, opts)
	}
	job, err := NewJob(in, space, strategy)
	if err != nil {
		return Result{}, err
	}
	return job.run(ctx, in, opts)
}

// resolve applies Options defaults and folds the deprecated Shard field into
// the Plan, validating the result. Both Plan.Shard and Shard end up carrying
// the effective slice, so internal code reads either consistently.
func (o Options) resolve() (Options, error) {
	o = o.withDefaults()
	if o.Plan.Shard.IsZero() {
		o.Plan.Shard = o.Shard
	}
	plan, err := o.Plan.withDefaults()
	if err != nil {
		return Options{}, err
	}
	o.Plan = plan
	o.Shard = plan.Shard
	return o, nil
}

// Job is a concrete sweep work-list: the exact designs one sweep invocation
// evaluates, fingerprinted by the space hash every checkpoint, merge, and
// coordination handshake validates against. NewJob builds one from a Space;
// the adaptive driver builds one per refinement round. Building the Job once
// and running it against several option sets (the coordinator runs one slice
// per lease) guarantees every run agrees on the enumeration.
type Job struct {
	// Strategy is the investment strategy every design is evaluated under.
	Strategy explorer.Strategy
	// Designs is the full work-list in enumeration order. Treat it as
	// read-only: checkpoints index into it by position.
	Designs []explorer.Design

	hash string
	meta *adaptiveMeta
}

// NewJob enumerates the space under the strategy into a runnable work-list.
// It fails on an empty space.
func NewJob(in *explorer.Inputs, space explorer.Space, strategy explorer.Strategy) (*Job, error) {
	designs := space.Enumerate(strategy, in.AvgDemandMW())
	if len(designs) == 0 {
		return nil, fmt.Errorf("sweep: empty search space")
	}
	return &Job{
		Strategy: strategy,
		Designs:  designs,
		hash:     sweepHash(in, strategy, designs),
	}, nil
}

// SpaceHash returns the job's fingerprint — identical across any process
// that enumerated the same space from the same inputs.
func (j *Job) SpaceHash() string { return j.hash }

// Run executes the job's work-list under the given options. It is Run for a
// prebuilt work-list; the coordinator uses it to run many shard slices of
// one job without re-enumerating (and re-hashing) the space per lease.
// The options' Plan must be exhaustive: an adaptive Plan describes how to
// *derive* work-lists and is handled by Run and the coordinator, not by a
// single job.
func (j *Job) Run(ctx context.Context, in *explorer.Inputs, opts Options) (Result, error) {
	opts, err := opts.resolve()
	if err != nil {
		return Result{}, err
	}
	if opts.Plan.Mode == ModeAdaptive {
		return Result{}, fmt.Errorf("sweep: a Job is a concrete work-list; run adaptive plans through sweep.Run or the coordinator")
	}
	return j.run(ctx, in, opts)
}

// run executes the work-list. opts must already be resolved.
func (j *Job) run(ctx context.Context, in *explorer.Inputs, opts Options) (Result, error) {
	r := &runner{
		in:       in,
		strategy: j.Strategy,
		designs:  j.Designs,
		opts:     opts,
		hash:     j.hash,
		meta:     j.meta,
		status:   make([]byte, len(j.Designs)),
		failErrs: make(map[int]error),
	}
	r.lo, r.hi = opts.Shard.Bounds(len(j.Designs))
	for i := range r.status {
		r.status[i] = statusPending
	}

	// An adaptive round starts from the cumulative fold state of all prior
	// rounds, so its checkpoint (and result) carries the frontier-so-far.
	// Seeding happens before restore: a checkpoint written by a seeded run
	// already includes the seeds, and re-folding them is idempotent.
	if j.meta != nil {
		if j.meta.seedBest != nil {
			r.best = *j.meta.seedBest
			r.haveBest = true
		}
		for _, o := range j.meta.seedFrontier {
			r.frontier.Add(o)
		}
	}

	resumed, err := r.restore()
	if err != nil {
		return Result{}, err
	}

	// First pass: evaluate everything still pending.
	ctxErr := r.pass(ctx, r.indicesWithStatus(statusPending), false, false)

	// Retry passes: re-evaluate designs still in the failed-once state
	// (including failures restored from the checkpoint of an interrupted
	// run), up to Options.Retries times. Only the final pass makes a
	// failure permanent.
	for attempt := 1; ctxErr == nil && attempt <= opts.Retries; attempt++ {
		idxs := r.indicesWithStatus(statusFailedOnce)
		if len(idxs) == 0 {
			break
		}
		if ctxErr = r.retryBackoff(ctx, attempt); ctxErr != nil {
			break
		}
		ctxErr = r.pass(ctx, idxs, true, attempt == opts.Retries)
	}
	if ctxErr == nil && opts.Retries == 0 {
		// Without a retry pass, single failures are final.
		for i, s := range r.status {
			if s == statusFailedOnce {
				r.status[i] = statusFailedPerm
			}
		}
	}

	if err := r.checkpoint(); err != nil && ctxErr == nil {
		return Result{}, err
	}

	res := r.result(resumed)
	if ctxErr != nil {
		return res, ctxErr
	}
	if res.Report.Evaluated == 0 && len(res.Report.Failures) > 0 {
		return res, fmt.Errorf("%w: %d failures, first: %w",
			explorer.ErrAllDesignsFailed, len(res.Report.Failures), res.Report.Failures[0])
	}
	return res, nil
}

// runner holds the mutable state of one Run invocation. All mutation
// happens on the caller goroutine; worker goroutines only evaluate.
type runner struct {
	in       *explorer.Inputs
	strategy explorer.Strategy
	designs  []explorer.Design
	opts     Options
	hash     string
	// meta carries the adaptive round context (round number, cells, prior
	// accounting, cumulative seeds); nil for exhaustive sweeps.
	meta *adaptiveMeta

	status   []byte
	failErrs map[int]error
	// best is the running optimum, valid only when haveBest. A value (not a
	// pointer) so fold never forces a heap allocation per improvement.
	best      explorer.Outcome
	haveBest  bool
	frontier  explorer.ParetoSet
	restored  int
	retried   int
	recovered int
	maxHeld   int
	sinceSave int

	// lo and hi delimit this run's shard slice [lo, hi) of the design
	// enumeration; [0, len(designs)) for unsharded runs. Evaluation passes
	// only consider indices inside the slice, but status, fold state, and
	// checkpoints cover the whole space.
	lo, hi int

	// evals are the per-worker evaluators, created lazily on the first batch
	// and reused across batches and retry passes so scratch buffers and the
	// renewable-supply memo stay warm for the whole run. outcomes and errs
	// are the batch result buffers, reused for the same reason.
	evals    []*explorer.Evaluator
	outcomes []explorer.Outcome
	errs     []error
}

// restore loads prior progress from the checkpoint file, if resuming.
func (r *runner) restore() (bool, error) {
	if !r.opts.Checkpoint.Resume || r.opts.Checkpoint.Path == "" {
		return false, nil
	}
	ck, err := loadCheckpoint(r.opts.Checkpoint.Path)
	if err != nil {
		if isNotExist(err) {
			return false, nil // nothing to resume yet: fresh sweep
		}
		return false, err
	}
	status, err := ck.matches(r.hash, len(r.designs))
	if err != nil {
		return false, err
	}
	ckShard, err := ck.shard()
	if err != nil {
		return false, err
	}
	// A checkpoint written by shard i/N may only be resumed by the same
	// shard, or adopted whole by an unsharded run (the lost-shard recovery
	// path). Resuming it under a different slice would quietly orphan the
	// designs between the two slices.
	if !r.opts.Shard.IsZero() && !ckShard.IsZero() && ckShard != r.opts.Shard {
		return false, fmt.Errorf("%w: checkpoint was written by shard %s, this run is shard %s",
			ErrCheckpointMismatch, ckShard, r.opts.Shard)
	}
	copy(r.status, status)
	r.retried = ck.Retried
	r.recovered = ck.Recovered
	if ck.Best != nil {
		r.best = ck.Best.outcome()
		r.haveBest = true
	}
	for _, f := range ck.Frontier {
		r.frontier.Add(f.outcome())
	}
	index := make(map[explorer.Design]int, len(r.designs))
	for i, d := range r.designs {
		index[d] = i
	}
	for _, f := range ck.Failures {
		if i, ok := index[f.Design]; ok {
			r.failErrs[i] = fmt.Errorf("sweep: restored failure: %s", f.Error)
		}
	}
	for _, s := range r.status {
		if s == statusDone {
			r.restored++
		}
	}
	return true, nil
}

// pass evaluates the given design indices in bounded batches, folding each
// batch into the running optimum and frontier. retry marks a retry pass
// over failed-once designs; final marks the last such pass, after which a
// failure becomes permanent instead of staying eligible for another retry.
// It returns ctx's error if cancelled (after a best-effort checkpoint
// write) and nil otherwise.
func (r *runner) pass(ctx context.Context, idxs []int, retry, final bool) error {
	for start := 0; start < len(idxs); start += r.opts.BatchSize {
		if err := ctx.Err(); err != nil {
			r.checkpointBestEffort()
			return err
		}
		end := start + r.opts.BatchSize
		if end > len(idxs) {
			end = len(idxs)
		}
		batch := idxs[start:end]
		outcomes, errs := r.evalBatch(ctx, batch)
		if len(batch) > r.maxHeld {
			r.maxHeld = len(batch)
		}
		// Fold sequentially in enumeration order, so the optimum and
		// frontier are reproduced identically by interrupted-and-resumed
		// runs.
		for k, i := range batch {
			switch {
			case errs[k] == errSkipped:
				// Cancelled before this design was evaluated: stays pending.
			case errs[k] != nil:
				r.failErrs[i] = errs[k]
				if retry && final {
					r.status[i] = statusFailedPerm
				} else {
					r.status[i] = statusFailedOnce
				}
				if retry {
					r.retried++
				}
			default:
				if retry {
					r.retried++
					r.recovered++
					delete(r.failErrs, i)
				}
				r.fold(outcomes[k])
				r.status[i] = statusDone
				r.sinceSave++
			}
		}
		if r.opts.Checkpoint.Path != "" && r.sinceSave >= r.opts.Checkpoint.Every {
			if err := r.checkpoint(); err != nil {
				return err
			}
		}
		if err := ctx.Err(); err != nil {
			r.checkpointBestEffort()
			return err
		}
	}
	return nil
}

// retryBackoff waits out the jittered exponential delay before retry pass
// `attempt`, honoring cancellation. The jitter seed is the sweep's space
// hash, so resumed and repeated runs of the same sweep wait identical
// spans — retry timing can never perturb the deterministic fold.
func (r *runner) retryBackoff(ctx context.Context, attempt int) error {
	seed, err := strconv.ParseUint(r.hash, 16, 64)
	if err != nil {
		// The hash is always 16 hex digits; an unparsable one would be a
		// programming error, but an unjittered wait is still correct.
		seed = 0
	}
	d := BackoffDelay(seed, attempt, r.opts.RetryBackoff, 100*r.opts.RetryBackoff)
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		r.checkpointBestEffort()
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// errSkipped marks a design a cancelled batch never got to evaluate. It is
// internal to the batch protocol and never escapes pass.
var errSkipped = fmt.Errorf("sweep: skipped by cancellation")

// evalBatch evaluates one batch of designs in parallel, bounded by
// GOMAXPROCS workers, and returns per-design outcomes and errors aligned
// with the batch (the slices are the runner's reusable buffers, valid until
// the next call). Each worker evaluates through its own persistent
// explorer.Evaluator: designs arrive in enumeration order, so the
// evaluator's memoized renewable supply usually survives from one design to
// the next and the scratch buffers never reallocate. Workers check ctx
// before each evaluation so cancellation stops within one design's latency.
func (r *runner) evalBatch(ctx context.Context, batch []int) ([]explorer.Outcome, []error) {
	if cap(r.outcomes) < len(batch) {
		r.outcomes = make([]explorer.Outcome, len(batch))
		r.errs = make([]error, len(batch))
	}
	outcomes := r.outcomes[:len(batch)]
	errs := r.errs[:len(batch)]
	for k := range outcomes {
		outcomes[k] = explorer.Outcome{}
		errs[k] = nil
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(batch) {
		workers = len(batch)
	}
	for len(r.evals) < workers {
		ev := r.in.NewEvaluator()
		// The fold drops SoC traces anyway (see fold); discarding them at
		// the source keeps the steady-state evaluate path allocation-free.
		ev.DiscardSoCTrace = true
		r.evals = append(r.evals, ev)
	}
	if workers == 1 {
		// Single-CPU (or single-design) batches run inline: the goroutine
		// and channel round-trips would only add overhead.
		ev := r.evals[0]
		for k := range batch {
			if ctx.Err() != nil {
				errs[k] = errSkipped
				continue
			}
			outcomes[k], errs[k] = ev.EvaluateSafe(r.designs[batch[k]])
		}
		return outcomes, errs
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(ev *explorer.Evaluator) {
			defer wg.Done()
			for k := range next {
				if ctx.Err() != nil {
					errs[k] = errSkipped
					continue
				}
				outcomes[k], errs[k] = ev.EvaluateSafe(r.designs[batch[k]])
			}
		}(r.evals[w])
	}
	for k := range batch {
		next <- k
	}
	close(next)
	wg.Wait()
	return outcomes, errs
}

// fold streams one successful outcome into the running optimum and
// frontier, dropping its hourly state-of-charge trace so retained memory is
// bounded by the frontier, not the grid.
func (r *runner) fold(o explorer.Outcome) {
	o.BatterySoC = timeseries.Series{}
	if !r.haveBest || betterOutcome(o, r.best) {
		r.best = o
		r.haveBest = true
	}
	r.frontier.Add(o)
}

// betterOutcome mirrors explorer's optimum ordering: minimum total carbon,
// ties toward higher coverage.
func betterOutcome(a, b explorer.Outcome) bool {
	if a.Total() != b.Total() { //carbonlint:allow floatcmp exact-bits tie-break mirrors explorer.better so resumed and merged sweeps agree
		return a.Total() < b.Total()
	}
	return a.CoveragePct > b.CoveragePct
}

// indicesWithStatus lists in-shard designs currently in the given state, in
// enumeration order. Designs outside the shard slice belong to other
// workers and are never evaluated here.
func (r *runner) indicesWithStatus(s byte) []int {
	var out []int
	for i := r.lo; i < r.hi; i++ {
		if r.status[i] == s {
			out = append(out, i)
		}
	}
	return out
}

// checkpoint persists the current fold state, if a path is configured.
func (r *runner) checkpoint() error {
	if r.opts.Checkpoint.Path == "" {
		return nil
	}
	ck := &checkpointFile{
		Version:   checkpointVersion,
		SpaceHash: r.hash,
		Site:      r.in.Site.ID,
		Strategy:  int(r.strategy),
		Designs:   len(r.designs),
		Shard:     r.opts.Shard.String(),
		Status:    encodeStatusRLE(r.status),
		Retried:   r.retried,
		Recovered: r.recovered,
	}
	if r.meta != nil {
		r.meta.stamp(ck)
	}
	if r.haveBest {
		so := saveOutcome(r.best)
		ck.Best = &so
	}
	for _, o := range r.frontier.Frontier() {
		ck.Frontier = append(ck.Frontier, saveOutcome(o))
	}
	// Walk indices in order (not the map) so the failure list is
	// deterministic and merged checkpoints are byte-stable.
	for i := range r.status {
		err, ok := r.failErrs[i]
		if !ok || (r.status[i] != statusFailedOnce && r.status[i] != statusFailedPerm) {
			continue
		}
		ck.Failures = append(ck.Failures, savedFailure{
			Design:    r.designs[i],
			Index:     i,
			Error:     err.Error(),
			Permanent: r.status[i] == statusFailedPerm,
		})
	}
	r.sinceSave = 0
	return ck.save(r.opts.Checkpoint.Path)
}

// checkpointBestEffort saves on the cancellation path, where the ctx error
// is the one the caller needs to see; a save failure must not mask it.
func (r *runner) checkpointBestEffort() {
	_ = r.checkpoint()
}

// result assembles the public Result from the runner's final state.
func (r *runner) result(resumed bool) Result {
	res := Result{Strategy: r.strategy, Resumed: resumed}
	res.Report.Restored = r.restored
	res.Report.Retried = r.retried
	res.Report.Recovered = r.recovered
	res.Report.MaxResident = r.maxHeld
	for i, s := range r.status {
		switch s {
		case statusDone:
			res.Report.Evaluated++
		case statusPending:
			if i < r.lo || i >= r.hi {
				res.Report.OutOfShard++
			} else {
				res.Report.Skipped++
			}
		case statusFailedOnce, statusFailedPerm:
			err := r.failErrs[i]
			if err == nil {
				err = fmt.Errorf("sweep: failure cause not recorded")
			}
			res.Report.Failures = append(res.Report.Failures, explorer.DesignError{Design: r.designs[i], Err: err})
		}
	}
	if r.haveBest {
		res.Optimal = r.best
	}
	res.Frontier = r.frontier.Frontier()
	return res
}

// isNotExist reports whether err means the checkpoint file is absent.
func isNotExist(err error) bool {
	return errors.Is(err, fs.ErrNotExist)
}
