package sweep

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"carbonexplorer/internal/carbon"
	"carbonexplorer/internal/explorer"
	"carbonexplorer/internal/faultinject"
	"carbonexplorer/internal/grid"
	"carbonexplorer/internal/timeseries"
)

// testInputs builds a small (10-day) but fully functional evaluation input.
func testInputs(tb testing.TB) *explorer.Inputs {
	tb.Helper()
	const n = 240
	demand := timeseries.Generate(n, func(h int) float64 { return 10 + 2*math.Sin(float64(h%24)/24*2*math.Pi) })
	wind := timeseries.Generate(n, func(h int) float64 { return 5 + 4*math.Sin(float64(h)/17) })
	solar := timeseries.Generate(n, func(h int) float64 { return math.Max(0, 8*math.Sin((float64(h%24)-6)/12*math.Pi)) })
	ci := timeseries.Constant(n, 400)
	in, err := explorer.NewInputsFromSeries(grid.MustSite("UT"), demand, wind, solar, ci, carbon.DefaultEmbodiedParams())
	if err != nil {
		tb.Fatalf("testInputs: %v", err)
	}
	return in
}

func testSpace(in *explorer.Inputs) explorer.Space {
	avg := in.AvgDemandMW()
	return explorer.Space{
		WindMW:             []float64{0, avg, 2 * avg, 4 * avg, 8 * avg},
		SolarMW:            []float64{0, avg, 2 * avg, 4 * avg, 8 * avg},
		BatteryHours:       []float64{0, 2},
		ExtraCapacityFracs: []float64{0, 0.25},
		DoD:                1.0,
		FlexibleRatio:      0.4,
	}
}

// denseSpace builds an n×n renewable grid (battery and CAS pinned off) for
// memory-scaling checks.
func denseSpace(in *explorer.Inputs, n int) explorer.Space {
	avg := in.AvgDemandMW()
	grid := make([]float64, n)
	for i := range grid {
		grid[i] = float64(i) / float64(n-1) * 8 * avg
	}
	return explorer.Space{WindMW: grid, SolarMW: grid, BatteryHours: []float64{0}, ExtraCapacityFracs: []float64{0}}
}

func sameOutcome(a, b explorer.Outcome) bool {
	return a.Design == b.Design && a.Operational == b.Operational && a.Embodied == b.Embodied
}

// TestRunMatchesSearch: the streaming fold must reproduce exactly the
// optimum and Pareto frontier of the materializing explorer.Search.
func TestRunMatchesSearch(t *testing.T) {
	in := testInputs(t)
	space := testSpace(in)

	want, err := in.Search(space, explorer.RenewablesBatteryCAS)
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	wantFrontier := explorer.ParetoFrontier(want.Points)

	got, err := Run(context.Background(), in, space, explorer.RenewablesBatteryCAS, Options{BatchSize: 7})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got.Report.Evaluated != want.Report.Evaluated {
		t.Fatalf("evaluated %d designs, Search evaluated %d", got.Report.Evaluated, want.Report.Evaluated)
	}
	if !sameOutcome(got.Optimal, want.Optimal) {
		t.Fatalf("optimum differs:\nsweep:  %+v\nsearch: %+v", got.Optimal.Design, want.Optimal.Design)
	}
	if len(got.Frontier) != len(wantFrontier) {
		t.Fatalf("frontier has %d points, Search frontier has %d", len(got.Frontier), len(wantFrontier))
	}
	for i := range wantFrontier {
		if !sameOutcome(got.Frontier[i], wantFrontier[i]) {
			t.Fatalf("frontier point %d differs: %+v vs %+v", i, got.Frontier[i].Design, wantFrontier[i].Design)
		}
	}
	// The streaming path drops SoC traces.
	if got.Optimal.BatterySoC.Len() != 0 {
		t.Fatal("streamed optimum retained an SoC trace")
	}
}

// TestResumeConvergesToUninterrupted is the engine-level acceptance test: a
// sweep cancelled partway through, checkpointed, and resumed must produce
// the same optimum and frontier as an uninterrupted sweep.
func TestResumeConvergesToUninterrupted(t *testing.T) {
	in := testInputs(t)
	space := testSpace(in)
	ckpt := filepath.Join(t.TempDir(), "sweep.json")

	clean, err := Run(context.Background(), in, space, explorer.RenewablesBatteryCAS, Options{BatchSize: 8})
	if err != nil {
		t.Fatalf("uninterrupted run: %v", err)
	}

	// Cancel after ~a third of the designs have started evaluating.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var mu sync.Mutex
	started := 0
	in.EvalHook = func(explorer.Design) error {
		mu.Lock()
		started++
		if started == 30 {
			cancel()
		}
		mu.Unlock()
		return nil
	}
	partial, err := Run(ctx, in, space, explorer.RenewablesBatteryCAS,
		Options{BatchSize: 8, Checkpoint: CheckpointOptions{Path: ckpt, Every: 10}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run: want context.Canceled, got %v", err)
	}
	if partial.Report.Skipped == 0 {
		t.Fatal("cancellation skipped nothing — cancel fired too late to test resume")
	}
	if partial.Report.Evaluated == 0 {
		t.Fatal("cancellation left nothing evaluated — nothing to restore")
	}

	in.EvalHook = nil
	resumed, err := Run(context.Background(), in, space, explorer.RenewablesBatteryCAS,
		Options{BatchSize: 8, Checkpoint: CheckpointOptions{Path: ckpt, Every: 10, Resume: true}})
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if !resumed.Resumed {
		t.Fatal("resumed run did not load the checkpoint")
	}
	if resumed.Report.Restored == 0 {
		t.Fatal("resumed run re-evaluated everything — checkpoint restored no progress")
	}
	if resumed.Report.Evaluated != clean.Report.Evaluated {
		t.Fatalf("resumed run evaluated %d designs, clean run %d", resumed.Report.Evaluated, clean.Report.Evaluated)
	}
	if resumed.Report.Restored >= clean.Report.Evaluated {
		t.Fatal("resumed run claims everything was restored — nothing was left to sweep")
	}
	if !sameOutcome(resumed.Optimal, clean.Optimal) {
		t.Fatalf("resumed optimum differs from uninterrupted:\nresumed: %+v\nclean:   %+v",
			resumed.Optimal.Design, clean.Optimal.Design)
	}
	if len(resumed.Frontier) != len(clean.Frontier) {
		t.Fatalf("resumed frontier has %d points, clean has %d", len(resumed.Frontier), len(clean.Frontier))
	}
	for i := range clean.Frontier {
		if !sameOutcome(resumed.Frontier[i], clean.Frontier[i]) {
			t.Fatalf("frontier point %d differs after resume: %+v vs %+v",
				i, resumed.Frontier[i].Design, clean.Frontier[i].Design)
		}
	}

	// The final checkpoint records a completed sweep: no pending designs.
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatalf("reading final checkpoint: %v", err)
	}
	var ck checkpointFile
	if err := json.Unmarshal(data, &ck); err != nil {
		t.Fatalf("decoding final checkpoint: %v", err)
	}
	if ck.Version != checkpointVersion {
		t.Fatalf("checkpoint version %d, want %d", ck.Version, checkpointVersion)
	}
	if strings.ContainsRune(ck.Status, statusPending) || strings.ContainsRune(ck.Status, statusFailedOnce) {
		t.Fatalf("completed sweep left unfinished statuses: %s", ck.Status)
	}
}

// TestRetryRecoversTransientFailures: a design that fails once and then
// succeeds must end up folded into the optimum, with the recovery counted.
func TestRetryRecoversTransientFailures(t *testing.T) {
	in := testInputs(t)
	space := testSpace(in)

	clean, err := Run(context.Background(), in, space, explorer.RenewablesBatteryCAS, Options{})
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}

	in.EvalHook = faultinject.TransientFaults(99, 0.2)
	res, err := Run(context.Background(), in, space, explorer.RenewablesBatteryCAS, Options{BatchSize: 8})
	if err != nil {
		t.Fatalf("transient-fault run: %v", err)
	}
	if res.Report.Retried == 0 || res.Report.Recovered == 0 {
		t.Fatalf("no retries recorded: %+v", res.Report)
	}
	if res.Report.Retried != res.Report.Recovered {
		t.Fatalf("transient faults should all recover on retry: %+v", res.Report)
	}
	if len(res.Report.Failures) != 0 {
		t.Fatalf("transient faults left permanent failures: %v", res.Report.Failures)
	}
	if res.Report.Evaluated != clean.Report.Evaluated {
		t.Fatalf("evaluated %d designs, clean run %d", res.Report.Evaluated, clean.Report.Evaluated)
	}
	if !sameOutcome(res.Optimal, clean.Optimal) {
		t.Fatalf("optimum differs after transient faults: %+v vs %+v", res.Optimal.Design, clean.Optimal.Design)
	}
}

// TestNoRetriesMakesFailuresPermanent: with the retry pass disabled
// (Options.Retries = NoRetries), a single failure excludes the design.
func TestNoRetriesMakesFailuresPermanent(t *testing.T) {
	in := testInputs(t)
	in.EvalHook = faultinject.TransientFaults(99, 0.2)
	res, err := Run(context.Background(), in, testSpace(in), explorer.RenewablesBatteryCAS,
		Options{BatchSize: 8, Retries: NoRetries})
	if err != nil {
		t.Fatalf("NoRetries run: %v", err)
	}
	if res.Report.Retried != 0 || res.Report.Recovered != 0 {
		t.Fatalf("NoRetries still retried: %+v", res.Report)
	}
	if len(res.Report.Failures) == 0 {
		t.Fatal("NoRetries recorded no permanent failures")
	}
	for _, f := range res.Report.Failures {
		if !errors.Is(f, faultinject.ErrInjected) {
			t.Fatalf("failure not traceable to injection: %v", f)
		}
	}
}

// TestAllDesignsFailed: the streaming sweep mirrors explorer.Search's
// typed error when nothing survives.
func TestAllDesignsFailed(t *testing.T) {
	in := testInputs(t)
	in.EvalHook = faultinject.DesignFaults(1, 1.1)
	_, err := Run(context.Background(), in, testSpace(in), explorer.RenewablesOnly, Options{})
	if !errors.Is(err, explorer.ErrAllDesignsFailed) {
		t.Fatalf("want ErrAllDesignsFailed, got %v", err)
	}
}

// TestCheckpointMismatchRejected: resuming against a different space,
// strategy, or a corrupted file must fail loudly, never silently mix
// sweeps.
func TestCheckpointMismatchRejected(t *testing.T) {
	in := testInputs(t)
	ckpt := filepath.Join(t.TempDir(), "sweep.json")

	if _, err := Run(context.Background(), in, testSpace(in), explorer.RenewablesOnly,
		Options{Checkpoint: CheckpointOptions{Path: ckpt}}); err != nil {
		t.Fatalf("seed run: %v", err)
	}

	// Different strategy over the same space: hash differs.
	_, err := Run(context.Background(), in, testSpace(in), explorer.RenewablesBatteryCAS,
		Options{Checkpoint: CheckpointOptions{Path: ckpt, Resume: true}})
	if !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("strategy change: want ErrCheckpointMismatch, got %v", err)
	}

	// Different space: hash differs.
	_, err = Run(context.Background(), in, denseSpace(in, 4), explorer.RenewablesOnly,
		Options{Checkpoint: CheckpointOptions{Path: ckpt, Resume: true}})
	if !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("space change: want ErrCheckpointMismatch, got %v", err)
	}

	// Future schema version.
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	var ck checkpointFile
	if err := json.Unmarshal(data, &ck); err != nil {
		t.Fatal(err)
	}
	ck.Version = checkpointVersionV3 + 1
	raw, _ := json.Marshal(ck)
	if err := os.WriteFile(ckpt, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Run(context.Background(), in, testSpace(in), explorer.RenewablesOnly,
		Options{Checkpoint: CheckpointOptions{Path: ckpt, Resume: true}})
	if !errors.Is(err, ErrCheckpointVersion) {
		t.Fatalf("future version: want ErrCheckpointVersion, got %v", err)
	}

	// A missing file is not an error: resume of a never-started sweep just
	// starts it.
	missing := filepath.Join(t.TempDir(), "absent.json")
	if _, err := Run(context.Background(), in, testSpace(in), explorer.RenewablesOnly,
		Options{Checkpoint: CheckpointOptions{Path: missing, Resume: true}}); err != nil {
		t.Fatalf("resume with missing checkpoint: %v", err)
	}
}

// TestBoundedMemoryFlatInDensity: the engine's peak resident outcome count
// must stay at the batch size no matter how dense the grid is — the
// bounded-memory contract of the streaming path.
func TestBoundedMemoryFlatInDensity(t *testing.T) {
	in := testInputs(t)
	const batch = 16
	for _, n := range []int{4, 8, 16} {
		res, err := Run(context.Background(), in, denseSpace(in, n), explorer.RenewablesOnly,
			Options{BatchSize: batch})
		if err != nil {
			t.Fatalf("grid %dx%d: %v", n, n, err)
		}
		if res.Report.Evaluated != n*n {
			t.Fatalf("grid %dx%d: evaluated %d designs", n, n, res.Report.Evaluated)
		}
		if res.Report.MaxResident > batch {
			t.Fatalf("grid %dx%d: %d outcomes resident, batch size is %d",
				n, n, res.Report.MaxResident, batch)
		}
	}
}

// BenchmarkSweepDensity records, per grid density, the peak resident
// outcome count (flat at the batch size) alongside the usual time/allocs —
// the benchmark evidence that the streaming path's footprint does not grow
// with Space density.
func BenchmarkSweepDensity(b *testing.B) {
	in := testInputs(b)
	for _, n := range []int{4, 8, 16} {
		b.Run(fmt.Sprintf("grid=%dx%d", n, n), func(b *testing.B) {
			space := denseSpace(in, n)
			designs := len(space.Enumerate(explorer.RenewablesOnly, in.AvgDemandMW()))
			b.ReportAllocs()
			var resident int
			for i := 0; i < b.N; i++ {
				res, err := Run(context.Background(), in, space, explorer.RenewablesOnly,
					Options{BatchSize: 16})
				if err != nil {
					b.Fatal(err)
				}
				resident = res.Report.MaxResident
			}
			b.ReportMetric(float64(resident), "outcomes-resident")
			b.ReportMetric(float64(designs)*float64(b.N)/b.Elapsed().Seconds(), "designs/sec")
		})
	}
}
