package sweep_test

import (
	"context"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"carbonexplorer/internal/carbon"
	"carbonexplorer/internal/explorer"
	"carbonexplorer/internal/grid"
	"carbonexplorer/internal/sweep"
	"carbonexplorer/internal/timeseries"
)

// ExamplePlanShards shows the deterministic partition every shard-aware
// sweep uses: contiguous, balanced slices computed purely from the design
// count, so independent workers agree with no coordination.
func ExamplePlanShards() {
	plans, err := sweep.PlanShards(10, 3)
	if err != nil {
		panic(err)
	}
	for _, p := range plans {
		fmt.Printf("shard %s: designs [%d,%d)\n", p.Shard, p.Start, p.End)
	}
	// Output:
	// shard 1/3: designs [0,4)
	// shard 2/3: designs [4,7)
	// shard 3/3: designs [7,10)
}

// ExampleMergeCheckpoints runs two shards of a 100-design sweep to
// completion, then folds their checkpoints into one unsharded checkpoint
// that Run with Checkpoint.Resume set accepts directly.
func ExampleMergeCheckpoints() {
	dir, err := os.MkdirTemp("", "sweep-merge-example")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	// Ten days of synthetic demand, renewable shapes, and grid carbon
	// intensity for the bundled UT region.
	const hours = 240
	demand := timeseries.Generate(hours, func(h int) float64 {
		return 10 + 2*math.Sin(float64(h%24)/24*2*math.Pi)
	})
	wind := timeseries.Generate(hours, func(h int) float64 { return 5 + 4*math.Sin(float64(h)/17) })
	solar := timeseries.Generate(hours, func(h int) float64 {
		return math.Max(0, 8*math.Sin((float64(h%24)-6)/12*math.Pi))
	})
	ci := timeseries.Constant(hours, 400)
	in, err := explorer.NewInputsFromSeries(grid.MustSite("UT"), demand, wind, solar, ci, carbon.DefaultEmbodiedParams())
	if err != nil {
		panic(err)
	}
	avg := in.AvgDemandMW()
	space := explorer.Space{ // 5 x 5 x 2 x 2 = 100 designs
		WindMW:             []float64{0, avg, 2 * avg, 4 * avg, 8 * avg},
		SolarMW:            []float64{0, avg, 2 * avg, 4 * avg, 8 * avg},
		BatteryHours:       []float64{0, 2},
		ExtraCapacityFracs: []float64{0, 0.25},
		DoD:                1.0,
		FlexibleRatio:      0.4,
	}

	// Each worker sweeps its own half and writes its own checkpoint. On a
	// real deployment these two runs happen on separate machines.
	var checkpoints []string
	for i := 1; i <= 2; i++ {
		ckpt := filepath.Join(dir, fmt.Sprintf("shard%d.json", i))
		if _, err := sweep.Run(context.Background(), in, space, explorer.RenewablesBatteryCAS, sweep.Options{
			Checkpoint: sweep.CheckpointOptions{Path: ckpt},
			Shard:      sweep.Shard{Index: i, Count: 2},
		}); err != nil {
			panic(err)
		}
		checkpoints = append(checkpoints, ckpt)
	}

	rep, err := sweep.MergeCheckpoints(filepath.Join(dir, "merged.json"), checkpoints...)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d shards merged: %d/%d designs done\n", len(rep.Inputs), rep.Done, rep.Total)
	fmt.Printf("complete: %v\n", rep.Complete())
	// Output:
	// 2 shards merged: 100/100 designs done
	// complete: true
}
