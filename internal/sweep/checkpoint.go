package sweep

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"

	"carbonexplorer/internal/explorer"
	"carbonexplorer/internal/units"
)

// checkpointVersion is the on-disk schema version. Bump it whenever the
// checkpoint layout changes incompatibly; Load rejects other versions with
// ErrCheckpointVersion instead of misreading old files.
const checkpointVersion = 1

var (
	// ErrCheckpointVersion is returned (wrapped) when a checkpoint file was
	// written by an incompatible schema version.
	ErrCheckpointVersion = errors.New("sweep: unsupported checkpoint version")
	// ErrCheckpointMismatch is returned (wrapped) when a checkpoint file
	// does not describe this sweep — different site, strategy, space, or
	// inputs. Resuming it would silently mix results from two different
	// sweeps, so it is rejected.
	ErrCheckpointMismatch = errors.New("sweep: checkpoint does not match this sweep")
)

// Per-design status runes, one per design in enumeration order. A string
// keeps the checkpoint human-inspectable: `jq -r .status` paints the sweep's
// progress directly.
const (
	statusPending    = 'P' // never evaluated
	statusDone       = 'D' // evaluated successfully and folded
	statusFailedOnce = 'F' // failed once; eligible for the retry pass
	statusFailedPerm = 'X' // failed permanently (retried, or retry disabled)
)

// checkpointFile is the versioned JSON schema persisted between runs. It
// holds everything the fold needs to continue — per-design status, the
// running best, the running Pareto frontier, and permanent failures — and
// deliberately nothing else: evaluated outcomes that are neither optimal nor
// on the frontier are not kept, which is what bounds the file (and the
// resumed sweep's memory) by the frontier size rather than the grid size.
type checkpointFile struct {
	Version   int            `json:"version"`
	SpaceHash string         `json:"space_hash"`
	Site      string         `json:"site"`
	Strategy  int            `json:"strategy"`
	Status    string         `json:"status"`
	Retried   int            `json:"retried"`
	Recovered int            `json:"recovered"`
	Best      *savedOutcome  `json:"best,omitempty"`
	Frontier  []savedOutcome `json:"frontier,omitempty"`
	Failures  []savedFailure `json:"failures,omitempty"`
}

// savedOutcome is explorer.Outcome minus the hourly battery state-of-charge
// trace, which the streaming path drops (it would make checkpoints and
// frontier memory scale with the year length). All floats round-trip exactly
// through JSON (Go emits shortest-exact representations).
type savedOutcome struct {
	Design                explorer.Design `json:"design"`
	CoveragePct           float64         `json:"coverage_pct"`
	Operational           float64         `json:"operational_g"`
	Embodied              float64         `json:"embodied_g"`
	EmbodiedRenewables    float64         `json:"embodied_renewables_g"`
	EmbodiedBattery       float64         `json:"embodied_battery_g"`
	EmbodiedServers       float64         `json:"embodied_servers_g"`
	GridEnergyMWh         float64         `json:"grid_energy_mwh"`
	SurplusMWh            float64         `json:"surplus_mwh"`
	BatteryCyclesPerDay   float64         `json:"battery_cycles_per_day"`
	ExtraCapacityUsedFrac float64         `json:"extra_capacity_used_frac"`
}

// savedFailure records a failed design and its cause. Error identity does
// not survive serialization — a resumed sweep reports restored failures as
// plain string errors.
type savedFailure struct {
	Design    explorer.Design `json:"design"`
	Error     string          `json:"error"`
	Permanent bool            `json:"permanent"`
}

func saveOutcome(o explorer.Outcome) savedOutcome {
	return savedOutcome{
		Design:                o.Design,
		CoveragePct:           o.CoveragePct,
		Operational:           float64(o.Operational),
		Embodied:              float64(o.Embodied),
		EmbodiedRenewables:    float64(o.EmbodiedRenewables),
		EmbodiedBattery:       float64(o.EmbodiedBattery),
		EmbodiedServers:       float64(o.EmbodiedServers),
		GridEnergyMWh:         o.GridEnergyMWh,
		SurplusMWh:            o.SurplusMWh,
		BatteryCyclesPerDay:   o.BatteryCyclesPerDay,
		ExtraCapacityUsedFrac: o.ExtraCapacityUsedFrac,
	}
}

func (s savedOutcome) outcome() explorer.Outcome {
	return explorer.Outcome{
		Design:                s.Design,
		CoveragePct:           s.CoveragePct,
		Operational:           units.GramsCO2(s.Operational),
		Embodied:              units.GramsCO2(s.Embodied),
		EmbodiedRenewables:    units.GramsCO2(s.EmbodiedRenewables),
		EmbodiedBattery:       units.GramsCO2(s.EmbodiedBattery),
		EmbodiedServers:       units.GramsCO2(s.EmbodiedServers),
		GridEnergyMWh:         s.GridEnergyMWh,
		SurplusMWh:            s.SurplusMWh,
		BatteryCyclesPerDay:   s.BatteryCyclesPerDay,
		ExtraCapacityUsedFrac: s.ExtraCapacityUsedFrac,
	}
}

// sweepHash fingerprints everything that determines the design list and its
// evaluation: the site, the strategy, the input fingerprint (year length and
// average demand, which scale battery designs), and every design's exact
// field bits. A checkpoint is only resumable against a byte-identical
// fingerprint.
func sweepHash(in *explorer.Inputs, strategy explorer.Strategy, designs []explorer.Design) string {
	h := fnv.New64a()
	write := func(v float64) { writeUint64(h, math.Float64bits(v)) }
	h.Write([]byte(in.Site.ID))
	writeUint64(h, uint64(strategy))
	writeUint64(h, uint64(in.Demand.Len()))
	write(in.AvgDemandMW())
	writeUint64(h, uint64(len(designs)))
	for _, d := range designs {
		write(d.WindMW)
		write(d.SolarMW)
		write(d.BatteryMWh)
		write(d.DoD)
		writeUint64(h, uint64(d.BatteryTech))
		write(d.FlexibleRatio)
		write(d.ExtraCapacityFrac)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

func writeUint64(h interface{ Write([]byte) (int, error) }, v uint64) {
	var b [8]byte
	for i := range b {
		b[i] = byte(v >> (8 * i))
	}
	h.Write(b[:])
}

// save atomically persists the checkpoint: write to a temp file in the same
// directory, then rename over the target, so an interrupted save never
// leaves a torn checkpoint behind.
func (c *checkpointFile) save(path string) error {
	data, err := json.MarshalIndent(c, "", " ")
	if err != nil {
		return fmt.Errorf("sweep: encoding checkpoint: %w", err)
	}
	tmp := filepath.Join(filepath.Dir(path), filepath.Base(path)+".tmp")
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("sweep: writing checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("sweep: committing checkpoint: %w", err)
	}
	return nil
}

// loadCheckpoint reads and version-checks a checkpoint file.
func loadCheckpoint(path string) (*checkpointFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("sweep: reading checkpoint: %w", err)
	}
	var c checkpointFile
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("sweep: decoding checkpoint %s: %w", path, err)
	}
	if c.Version != checkpointVersion {
		return nil, fmt.Errorf("%w: file has version %d, this build reads %d",
			ErrCheckpointVersion, c.Version, checkpointVersion)
	}
	return &c, nil
}

// matches verifies the checkpoint describes this exact sweep.
func (c *checkpointFile) matches(hash string, nDesigns int) error {
	if c.SpaceHash != hash {
		return fmt.Errorf("%w: space hash %s vs %s", ErrCheckpointMismatch, c.SpaceHash, hash)
	}
	if len(c.Status) != nDesigns {
		return fmt.Errorf("%w: %d design statuses vs %d designs", ErrCheckpointMismatch, len(c.Status), nDesigns)
	}
	return nil
}
