package sweep

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"

	"carbonexplorer/internal/explorer"
	"carbonexplorer/internal/units"
)

// checkpointVersion is the on-disk schema version exhaustive sweeps emit.
// Version 2 run-length-encodes the design-status string and adds shard
// metadata; the loader still reads version 1 (plain status string,
// unsharded). Adaptive sweeps emit version 3, which adds the refinement
// round state (mode, base hash, round, cells, prior-round accounting) —
// exhaustive checkpoints stay byte-identical to version 2. Load rejects any
// other version with ErrCheckpointVersion instead of misreading the file.
const checkpointVersion = 2

// checkpointVersionV1 is the legacy schema: plain (one rune per design)
// status string, no shard or designs fields. Read-only.
const checkpointVersionV1 = 1

// checkpointVersionV3 is the adaptive schema: a version-2 checkpoint over
// the current round's work-list (its SpaceHash fingerprints the ROUND, so
// resume/merge/coordination validation applies per round unchanged) plus
// the round state needed to reconstruct the work-list and fast-forward a
// resumed refinement.
const checkpointVersionV3 = 3

var (
	// ErrCheckpointVersion is returned (wrapped) when a checkpoint file was
	// written by an incompatible schema version.
	ErrCheckpointVersion = errors.New("sweep: unsupported checkpoint version")
	// ErrCheckpointMismatch is returned (wrapped) when a checkpoint file
	// does not describe this sweep — different site, strategy, space, or
	// inputs. Resuming it would silently mix results from two different
	// sweeps, so it is rejected.
	ErrCheckpointMismatch = errors.New("sweep: checkpoint does not match this sweep")
)

// Per-design status runes, one per design in enumeration order. A string
// keeps the checkpoint human-inspectable: `jq -r .status` paints the sweep's
// progress directly.
const (
	statusPending    = 'P' // never evaluated
	statusDone       = 'D' // evaluated successfully and folded
	statusFailedOnce = 'F' // failed once; eligible for the retry pass
	statusFailedPerm = 'X' // failed permanently (retried, or retry disabled)
)

// checkpointFile is the versioned JSON schema persisted between runs. It
// holds everything the fold needs to continue — per-design status, the
// running best, the running Pareto frontier, and permanent failures — and
// deliberately nothing else: evaluated outcomes that are neither optimal nor
// on the frontier are not kept, which is what bounds the file (and the
// resumed sweep's memory) by the frontier size rather than the grid size.
type checkpointFile struct {
	Version   int    `json:"version"`
	SpaceHash string `json:"space_hash"`
	Site      string `json:"site"`
	Strategy  int    `json:"strategy"`
	// Designs is the total number of designs in the FULL space (version 2).
	// Even a shard checkpoint records the whole enumeration, so any set of
	// shard checkpoints agrees on the index space and can be merged.
	Designs int `json:"designs,omitempty"`
	// Shard is the "index/count" slice the writing run evaluated, or ""
	// for an unsharded run or a merged checkpoint (version 2).
	Shard string `json:"shard,omitempty"`
	// Status covers every design of the full space in enumeration order.
	// Version 1 stores one rune per design; version 2 run-length encodes
	// the same runes as count+rune pairs ("40D1F9P").
	Status    string         `json:"status"`
	Retried   int            `json:"retried"`
	Recovered int            `json:"recovered"`
	Best      *savedOutcome  `json:"best,omitempty"`
	Frontier  []savedOutcome `json:"frontier,omitempty"`
	Failures  []savedFailure `json:"failures,omitempty"`

	// Version-3 (adaptive) round state. Status, Designs, Shard, Retried,
	// Recovered, and Failures above are round-local — they describe the
	// current round's work-list — while Best and Frontier are cumulative
	// over all rounds (each round folds from the prior rounds' state).
	//
	// Mode is "adaptive" for version-3 files and empty otherwise.
	Mode string `json:"mode,omitempty"`
	// BaseHash fingerprints the refinement as a whole (site, strategy,
	// inputs, bounding box, coarse resolution, tolerance, round budget);
	// SpaceHash fingerprints only the current round's work-list.
	BaseHash string `json:"base_hash,omitempty"`
	// Round is the refinement round this checkpoint belongs to (0 is the
	// coarse pass).
	Round int `json:"round,omitempty"`
	// Cells is the round's cell work-list; together with Round it
	// deterministically reconstructs the design work-list, so a resumed
	// refinement needs nothing else to re-derive what it was evaluating.
	Cells []savedCell `json:"cells,omitempty"`
	// Converged marks the refinement's final checkpoint: no cell survived
	// pruning (or the round budget was spent) and Frontier is the answer.
	Converged bool `json:"converged,omitempty"`
	// Prior carries the accounting of completed earlier rounds so a
	// resumed refinement reports cumulative totals.
	Prior *savedPrior `json:"prior,omitempty"`
}

// savedCell is one refinement cell: the lower-corner lattice index of the
// cell per axis, in the fixed explorer axis order (wind, solar, battery,
// extra capacity).
type savedCell struct {
	Idx [explorer.NumAxes]int `json:"idx"`
}

// savedPrior accumulates the completed prior rounds of an adaptive sweep.
type savedPrior struct {
	// Evals is the number of successfully evaluated designs per completed
	// round, in round order.
	Evals []int `json:"evals"`
	// Retried and Recovered sum the retry accounting of completed rounds.
	Retried   int `json:"retried,omitempty"`
	Recovered int `json:"recovered,omitempty"`
	// Failures lists designs that failed permanently in completed rounds.
	Failures []savedFailure `json:"failures,omitempty"`
}

// statusBytes decodes the per-design status string according to the file's
// schema version, validating every rune.
func (c *checkpointFile) statusBytes() ([]byte, error) {
	if c.Version == checkpointVersionV1 {
		for _, s := range []byte(c.Status) {
			if !validStatus(s) {
				return nil, fmt.Errorf("%w: unknown design status %q", ErrCheckpointMismatch, s)
			}
		}
		return []byte(c.Status), nil
	}
	return decodeStatusRLE(c.Status)
}

// shard parses the checkpoint's shard label ("" means unsharded).
func (c *checkpointFile) shard() (Shard, error) {
	sh, err := ParseShard(c.Shard)
	if err != nil {
		return Shard{}, fmt.Errorf("%w: shard label: %w", ErrCheckpointMismatch, err)
	}
	return sh, nil
}

func validStatus(s byte) bool {
	switch s {
	case statusPending, statusDone, statusFailedOnce, statusFailedPerm:
		return true
	}
	return false
}

// encodeStatusRLE run-length encodes a status string as decimal-count+rune
// pairs: "DDDDFPP" -> "4D1F2P". Long uniform runs — the common shape of a
// multi-million-design sweep, where most designs are done or pending —
// collapse to a handful of bytes, which is what keeps version-2 checkpoints
// small enough to write every few hundred designs on spaces with millions
// of points (the ROADMAP's checkpoint-compaction item).
func encodeStatusRLE(status []byte) string {
	var b strings.Builder
	for i := 0; i < len(status); {
		j := i
		for j < len(status) && status[j] == status[i] {
			j++
		}
		b.WriteString(strconv.Itoa(j - i))
		b.WriteByte(status[i])
		i = j
	}
	return b.String()
}

// decodeStatusRLE inverts encodeStatusRLE, rejecting malformed input:
// missing counts, zero/negative runs, unknown status runes, or an encoding
// so large it cannot describe a real sweep.
func decodeStatusRLE(enc string) ([]byte, error) {
	var out []byte
	for i := 0; i < len(enc); {
		j := i
		for j < len(enc) && enc[j] >= '0' && enc[j] <= '9' {
			j++
		}
		if j == i || j == len(enc) {
			return nil, fmt.Errorf("%w: malformed run-length status near byte %d", ErrCheckpointMismatch, i)
		}
		n, err := strconv.Atoi(enc[i:j])
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("%w: bad run length %q in status", ErrCheckpointMismatch, enc[i:j])
		}
		r := enc[j]
		if !validStatus(r) {
			return nil, fmt.Errorf("%w: unknown design status %q", ErrCheckpointMismatch, r)
		}
		if len(out)+n > maxStatusLen {
			return nil, fmt.Errorf("%w: status describes more than %d designs", ErrCheckpointMismatch, maxStatusLen)
		}
		for k := 0; k < n; k++ {
			out = append(out, r)
		}
		i = j + 1
	}
	return out, nil
}

// maxStatusLen bounds how many designs a decoded status string may
// describe, so a corrupt run length cannot balloon memory.
const maxStatusLen = 1 << 28

// savedOutcome is explorer.Outcome minus the hourly battery state-of-charge
// trace, which the streaming path drops (it would make checkpoints and
// frontier memory scale with the year length). All floats round-trip exactly
// through JSON (Go emits shortest-exact representations).
type savedOutcome struct {
	Design                explorer.Design `json:"design"`
	CoveragePct           float64         `json:"coverage_pct"`
	Operational           float64         `json:"operational_g"`
	Embodied              float64         `json:"embodied_g"`
	EmbodiedRenewables    float64         `json:"embodied_renewables_g"`
	EmbodiedBattery       float64         `json:"embodied_battery_g"`
	EmbodiedServers       float64         `json:"embodied_servers_g"`
	GridEnergyMWh         float64         `json:"grid_energy_mwh"`
	SurplusMWh            float64         `json:"surplus_mwh"`
	BatteryCyclesPerDay   float64         `json:"battery_cycles_per_day"`
	ExtraCapacityUsedFrac float64         `json:"extra_capacity_used_frac"`
}

// savedFailure records a failed design and its cause. Error identity does
// not survive serialization — a resumed sweep reports restored failures as
// plain string errors. Index is the design's position in the enumeration
// (version 2), which lets a merge drop failure records for designs another
// shard attempt later completed; version-1 files load with Index -1
// (unknown).
type savedFailure struct {
	Design    explorer.Design `json:"design"`
	Index     int             `json:"index"`
	Error     string          `json:"error"`
	Permanent bool            `json:"permanent"`
}

func saveOutcome(o explorer.Outcome) savedOutcome {
	return savedOutcome{
		Design:                o.Design,
		CoveragePct:           o.CoveragePct,
		Operational:           float64(o.Operational),
		Embodied:              float64(o.Embodied),
		EmbodiedRenewables:    float64(o.EmbodiedRenewables),
		EmbodiedBattery:       float64(o.EmbodiedBattery),
		EmbodiedServers:       float64(o.EmbodiedServers),
		GridEnergyMWh:         o.GridEnergyMWh,
		SurplusMWh:            o.SurplusMWh,
		BatteryCyclesPerDay:   o.BatteryCyclesPerDay,
		ExtraCapacityUsedFrac: o.ExtraCapacityUsedFrac,
	}
}

func (s savedOutcome) outcome() explorer.Outcome {
	return explorer.Outcome{
		Design:                s.Design,
		CoveragePct:           s.CoveragePct,
		Operational:           units.GramsCO2(s.Operational),
		Embodied:              units.GramsCO2(s.Embodied),
		EmbodiedRenewables:    units.GramsCO2(s.EmbodiedRenewables),
		EmbodiedBattery:       units.GramsCO2(s.EmbodiedBattery),
		EmbodiedServers:       units.GramsCO2(s.EmbodiedServers),
		GridEnergyMWh:         s.GridEnergyMWh,
		SurplusMWh:            s.SurplusMWh,
		BatteryCyclesPerDay:   s.BatteryCyclesPerDay,
		ExtraCapacityUsedFrac: s.ExtraCapacityUsedFrac,
	}
}

// SpaceHash fingerprints a sweep for coordination handshakes: two workers
// (or a worker and a network coordinator) agree they are sweeping the same
// space exactly when their SpaceHash values match. It is the same
// fingerprint checkpoints are validated against on resume and merge.
func SpaceHash(in *explorer.Inputs, strategy explorer.Strategy, designs []explorer.Design) string {
	return sweepHash(in, strategy, designs)
}

// sweepHash fingerprints everything that determines the design list and its
// evaluation: the site, the strategy, the input fingerprint (year length and
// average demand, which scale battery designs), and every design's exact
// field bits. A checkpoint is only resumable against a byte-identical
// fingerprint.
func sweepHash(in *explorer.Inputs, strategy explorer.Strategy, designs []explorer.Design) string {
	h := fnv.New64a()
	// One reusable buffer for every write: passing a fresh array through
	// the hash.Hash interface would heap-allocate it per field, and this
	// runs 7 writes per design on every sweep start.
	buf := make([]byte, 8)
	writeUint64 := func(v uint64) {
		for i := range buf {
			buf[i] = byte(v >> (8 * i))
		}
		//carbonlint:allow errwrap hash writers (fnv) are documented never to return an error
		h.Write(buf)
	}
	write := func(v float64) { writeUint64(math.Float64bits(v)) }
	//carbonlint:allow errwrap hash.Hash.Write is documented never to return an error
	h.Write([]byte(in.Site.ID))
	writeUint64(uint64(strategy))
	writeUint64(uint64(in.Demand.Len()))
	write(in.AvgDemandMW())
	writeUint64(uint64(len(designs)))
	for _, d := range designs {
		write(d.WindMW)
		write(d.SolarMW)
		write(d.BatteryMWh)
		write(d.DoD)
		writeUint64(uint64(d.BatteryTech))
		write(d.FlexibleRatio)
		write(d.ExtraCapacityFrac)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// tmpSeq disambiguates concurrent WriteFileAtomic staging files within one
// process; the PID disambiguates across processes.
var tmpSeq atomic.Uint64

// WriteFileAtomic persists data at path atomically: write to a temp file in
// the target's directory, then rename over the target, so an interrupted
// write never leaves a torn file behind. It is the single sanctioned write
// path the atomicwrite lint funnels checkpoint saves through, and the
// coordinator's lease files reuse it for the same crash-safety guarantee.
// The staging name is qualified by PID and a process-wide sequence number,
// so concurrent writers — a stolen lease's old owner racing the thief, or
// two workers in one process — cannot clobber each other's temp file
// mid-write; the racing renames then publish complete files in some order,
// which the monotone checkpoint design tolerates.
func WriteFileAtomic(path string, data []byte) error {
	tmp := filepath.Join(filepath.Dir(path), fmt.Sprintf("%s.tmp.%d.%d", filepath.Base(path), os.Getpid(), tmpSeq.Add(1)))
	//carbonlint:allow atomicwrite this is the atomic helper itself: temp file in the target directory, then rename below
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("sweep: writing %s: %w", filepath.Base(path), err)
	}
	//carbonlint:allow atomicwrite the commit half of the atomic helper: rename over the target is the crash-safe publish
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("sweep: committing %s: %w", filepath.Base(path), err)
	}
	return nil
}

// save atomically persists the checkpoint through WriteFileAtomic, so an
// interrupted save never leaves a torn checkpoint behind.
func (c *checkpointFile) save(path string) error {
	data, err := json.MarshalIndent(c, "", " ")
	if err != nil {
		return fmt.Errorf("sweep: encoding checkpoint: %w", err)
	}
	return WriteFileAtomic(path, append(data, '\n'))
}

// loadCheckpoint reads and version-checks a checkpoint file.
func loadCheckpoint(path string) (*checkpointFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("sweep: reading checkpoint: %w", err)
	}
	var c checkpointFile
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("sweep: decoding checkpoint %s: %w", path, err)
	}
	if c.Version != checkpointVersion && c.Version != checkpointVersionV1 && c.Version != checkpointVersionV3 {
		return nil, fmt.Errorf("%w: file has version %d, this build reads %d through %d",
			ErrCheckpointVersion, c.Version, checkpointVersionV1, checkpointVersionV3)
	}
	if c.Version == checkpointVersionV1 {
		// v1 predates per-failure indices and shard metadata.
		for i := range c.Failures {
			c.Failures[i].Index = -1
		}
	}
	return &c, nil
}

// matches verifies the checkpoint describes this exact sweep and returns
// the decoded per-design status string.
func (c *checkpointFile) matches(hash string, nDesigns int) ([]byte, error) {
	if c.SpaceHash != hash {
		return nil, fmt.Errorf("%w: space hash %s vs %s", ErrCheckpointMismatch, c.SpaceHash, hash)
	}
	status, err := c.statusBytes()
	if err != nil {
		return nil, err
	}
	if len(status) != nDesigns {
		return nil, fmt.Errorf("%w: %d design statuses vs %d designs", ErrCheckpointMismatch, len(status), nDesigns)
	}
	if c.Version != checkpointVersionV1 && c.Designs != nDesigns {
		return nil, fmt.Errorf("%w: checkpoint records %d designs vs %d enumerated", ErrCheckpointMismatch, c.Designs, nDesigns)
	}
	return status, nil
}
