package sweep

import (
	"testing"
	"time"
)

func TestBackoffDelayDeterministic(t *testing.T) {
	for attempt := 1; attempt <= 10; attempt++ {
		a := BackoffDelay(7, attempt, 50*time.Millisecond, 2*time.Second)
		b := BackoffDelay(7, attempt, 50*time.Millisecond, 2*time.Second)
		if a != b {
			t.Fatalf("attempt %d: %v != %v for the same seed", attempt, a, b)
		}
	}
}

func TestBackoffDelayJitterBounds(t *testing.T) {
	base := 100 * time.Millisecond
	for seed := uint64(0); seed < 200; seed++ {
		for attempt := 1; attempt <= 5; attempt++ {
			ideal := base << (attempt - 1)
			d := BackoffDelay(seed, attempt, base, 0)
			if d < ideal/2 || d >= ideal+ideal/2 {
				t.Fatalf("seed %d attempt %d: %v outside [%v, %v)", seed, attempt, d, ideal/2, ideal+ideal/2)
			}
		}
	}
}

func TestBackoffDelaySeedsDecorrelate(t *testing.T) {
	// Different seeds must not retry in lockstep: across many seeds the
	// jitter draws cannot all collapse to one value.
	distinct := map[time.Duration]bool{}
	for seed := uint64(0); seed < 50; seed++ {
		distinct[BackoffDelay(seed, 3, 50*time.Millisecond, 0)] = true
	}
	if len(distinct) < 25 {
		t.Fatalf("only %d distinct delays across 50 seeds", len(distinct))
	}
}

func TestBackoffDelayCap(t *testing.T) {
	max := 300 * time.Millisecond
	for attempt := 1; attempt <= 40; attempt++ {
		if d := BackoffDelay(3, attempt, 50*time.Millisecond, max); d > max {
			t.Fatalf("attempt %d: %v exceeds cap %v", attempt, d, max)
		}
	}
	// Deep attempts must not overflow into negative durations either.
	if d := BackoffDelay(3, 500, 50*time.Millisecond, max); d < 0 || d > max {
		t.Fatalf("attempt 500: %v", d)
	}
}

func TestBackoffDelayDegenerateInputs(t *testing.T) {
	if d := BackoffDelay(1, 0, 50*time.Millisecond, time.Second); d != 0 {
		t.Fatalf("attempt 0: %v, want 0", d)
	}
	if d := BackoffDelay(1, -3, 50*time.Millisecond, time.Second); d != 0 {
		t.Fatalf("negative attempt: %v, want 0", d)
	}
	if d := BackoffDelay(1, 3, 0, time.Second); d != 0 {
		t.Fatalf("zero base: %v, want 0", d)
	}
}
