package sweep

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"carbonexplorer/internal/explorer"
	"carbonexplorer/internal/faultinject"
)

// runShard runs one shard of the space to completion and returns its
// checkpoint path.
func runShard(t *testing.T, in *explorer.Inputs, space explorer.Space, dir string, i, n int) string {
	t.Helper()
	ckpt := filepath.Join(dir, fmt.Sprintf("shard%dof%d.json", i, n))
	if _, err := Run(context.Background(), in, space, explorer.RenewablesBatteryCAS,
		Options{BatchSize: 6, Shard: Shard{Index: i, Count: n}, Checkpoint: CheckpointOptions{Path: ckpt}}); err != nil {
		t.Fatalf("shard %d/%d: %v", i, n, err)
	}
	return ckpt
}

// TestMergeRejectsMismatchedShards: shards of different sweeps (different
// strategy here, hence a different space hash) must never merge.
func TestMergeRejectsMismatchedShards(t *testing.T) {
	in := testInputs(t)
	space := testSpace(in)
	dir := t.TempDir()

	a := filepath.Join(dir, "a.json")
	if _, err := Run(context.Background(), in, space, explorer.RenewablesBatteryCAS,
		Options{Shard: Shard{1, 2}, Checkpoint: CheckpointOptions{Path: a}}); err != nil {
		t.Fatal(err)
	}
	b := filepath.Join(dir, "b.json")
	if _, err := Run(context.Background(), in, space, explorer.RenewablesOnly,
		Options{Shard: Shard{2, 2}, Checkpoint: CheckpointOptions{Path: b}}); err != nil {
		t.Fatal(err)
	}
	_, err := MergeCheckpoints(filepath.Join(dir, "merged.json"), a, b)
	if !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("merging shards of different strategies: want ErrCheckpointMismatch, got %v", err)
	}

	if _, err := MergeCheckpoints(filepath.Join(dir, "merged.json")); err == nil {
		t.Fatal("merge of zero files accepted")
	}
	if _, err := MergeCheckpoints(filepath.Join(dir, "merged.json"), filepath.Join(dir, "absent.json")); err == nil {
		t.Fatal("merge of a missing file accepted")
	}
}

// TestMergePartialShards: merging a complete shard with a missing one
// yields a resumable checkpoint whose pending designs are exactly the
// missing slice, and resuming it converges to the single-process result.
func TestMergePartialShards(t *testing.T) {
	in := testInputs(t)
	space := testSpace(in)
	dir := t.TempDir()

	clean, err := Run(context.Background(), in, space, explorer.RenewablesBatteryCAS, Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Shards 1 and 3 of 3 finish; shard 2 is lost.
	p1 := runShard(t, in, space, dir, 1, 3)
	p3 := runShard(t, in, space, dir, 3, 3)

	merged := filepath.Join(dir, "merged.json")
	rep, err := MergeCheckpoints(merged, p3, p1) // order must not matter
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	if rep.Complete() {
		t.Fatal("merge with a lost shard claims completion")
	}
	plans, err := PlanShards(rep.Total, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pending != plans[1].Size() {
		t.Fatalf("merged pending %d, lost shard holds %d", rep.Pending, plans[1].Size())
	}
	if rep.Done != clean.Report.Evaluated-plans[1].Size() {
		t.Fatalf("merged done %d, want %d", rep.Done, clean.Report.Evaluated-plans[1].Size())
	}

	// Resume the merged checkpoint unsharded: it finishes the lost slice.
	final, err := Run(context.Background(), in, space, explorer.RenewablesBatteryCAS,
		Options{Checkpoint: CheckpointOptions{Path: merged, Resume: true}})
	if err != nil {
		t.Fatalf("resume of partial merge: %v", err)
	}
	if final.Report.Restored != rep.Done {
		t.Fatalf("resume restored %d designs, merge reported %d done", final.Report.Restored, rep.Done)
	}
	if !sameOutcome(final.Optimal, clean.Optimal) {
		t.Fatalf("optimum differs after lost-shard recovery: %+v vs %+v",
			final.Optimal.Design, clean.Optimal.Design)
	}
	if len(final.Frontier) != len(clean.Frontier) {
		t.Fatalf("frontier has %d points after recovery, clean has %d", len(final.Frontier), len(clean.Frontier))
	}
	for i := range clean.Frontier {
		if !sameOutcome(final.Frontier[i], clean.Frontier[i]) {
			t.Fatalf("frontier point %d differs: %+v vs %+v", i, final.Frontier[i].Design, clean.Frontier[i].Design)
		}
	}
}

// TestMergeOverlappingAttempts: two checkpoints of the SAME shard — one
// interrupted mid-batch, one complete (the shard was retried) — must merge
// cleanly, with done beating pending and stale failure records dropped.
func TestMergeOverlappingAttempts(t *testing.T) {
	in := testInputs(t)
	space := testSpace(in)
	dir := t.TempDir()

	clean, err := Run(context.Background(), in, space, explorer.RenewablesBatteryCAS, Options{})
	if err != nil {
		t.Fatal(err)
	}

	// First attempt of shard 1/2: transient faults everywhere, killed early,
	// leaving failed-once and pending designs behind.
	attempt1 := filepath.Join(dir, "shard1-attempt1.json")
	ctx, cancel := context.WithCancel(context.Background())
	var mu sync.Mutex
	evals := 0
	transient := faultinject.TransientFaults(3, 0.5)
	in.EvalHook = func(d explorer.Design) error {
		mu.Lock()
		evals++
		if evals == 8 {
			cancel()
		}
		mu.Unlock()
		return transient(d)
	}
	_, err = Run(ctx, in, space, explorer.RenewablesBatteryCAS,
		Options{BatchSize: 4, Shard: Shard{1, 2}, Checkpoint: CheckpointOptions{Path: attempt1, Every: 2}})
	cancel()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("attempt 1 should die of the injected kill, got %v", err)
	}

	// Second attempt (fresh checkpoint, no faults) completes the shard.
	in.EvalHook = nil
	attempt2 := runShard(t, in, space, dir, 1, 2)
	p2 := runShard(t, in, space, dir, 2, 2)

	merged := filepath.Join(dir, "merged.json")
	rep, err := MergeCheckpoints(merged, attempt1, attempt2, p2)
	if err != nil {
		t.Fatalf("merge with overlapping attempts: %v", err)
	}
	if !rep.Complete() {
		t.Fatalf("complete attempts merged into pending work: %+v", rep)
	}
	if rep.FailedOnce != 0 || rep.FailedPerm != 0 {
		t.Fatalf("stale failures from the dead attempt survived the merge: %+v", rep)
	}

	final, err := Run(context.Background(), in, space, explorer.RenewablesBatteryCAS,
		Options{Checkpoint: CheckpointOptions{Path: merged, Resume: true}})
	if err != nil {
		t.Fatalf("resume of merged overlap: %v", err)
	}
	if !sameOutcome(final.Optimal, clean.Optimal) {
		t.Fatalf("optimum differs: %+v vs %+v", final.Optimal.Design, clean.Optimal.Design)
	}
	if len(final.Report.Failures) != 0 {
		t.Fatalf("merged sweep reports failures from the dead attempt: %v", final.Report.Failures)
	}
}

// TestMergeSingleFileIdempotent: merging one complete checkpoint (and
// re-merging the merge) reproduces the same fold state — merge is a
// projection, not a transformation.
func TestMergeSingleFileIdempotent(t *testing.T) {
	in := testInputs(t)
	space := testSpace(in)
	dir := t.TempDir()

	ckpt := filepath.Join(dir, "whole.json")
	clean, err := Run(context.Background(), in, space, explorer.RenewablesBatteryCAS,
		Options{Checkpoint: CheckpointOptions{Path: ckpt}})
	if err != nil {
		t.Fatal(err)
	}

	m1 := filepath.Join(dir, "m1.json")
	rep1, err := MergeCheckpoints(m1, ckpt)
	if err != nil {
		t.Fatal(err)
	}
	m2 := filepath.Join(dir, "m2.json")
	rep2, err := MergeCheckpoints(m2, m1, m1)
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Done != rep2.Done || rep1.Total != rep2.Total || !rep1.Complete() || !rep2.Complete() {
		t.Fatalf("re-merge drifted: %+v vs %+v", rep1, rep2)
	}

	final, err := Run(context.Background(), in, space, explorer.RenewablesBatteryCAS,
		Options{Checkpoint: CheckpointOptions{Path: m2, Resume: true}})
	if err != nil {
		t.Fatal(err)
	}
	if !sameOutcome(final.Optimal, clean.Optimal) {
		t.Fatalf("optimum drifted through double merge: %+v vs %+v", final.Optimal.Design, clean.Optimal.Design)
	}
	if final.Report.Restored != clean.Report.Evaluated {
		t.Fatalf("double merge lost progress: restored %d of %d", final.Report.Restored, clean.Report.Evaluated)
	}
}

// TestProgressWithin: counting statuses inside an arbitrary shard window,
// regardless of the file's own shard label. This is what lets a
// coordinator validate one lease's slice against its merged (unsharded)
// stored checkpoint.
func TestProgressWithin(t *testing.T) {
	in := testInputs(t)
	space := testSpace(in)
	dir := t.TempDir()
	n := len(space.Enumerate(explorer.RenewablesBatteryCAS, in.AvgDemandMW()))

	// Complete shard 1/4, then merge it alone: the merged file is
	// unsharded, so plain Progress sees 3/4 of the space pending.
	ckpt := runShard(t, in, space, dir, 1, 4)
	merged := filepath.Join(dir, "merged.json")
	if _, err := MergeCheckpoints(merged, ckpt); err != nil {
		t.Fatal(err)
	}

	sh := Shard{Index: 1, Count: 4}
	lo, hi := sh.Bounds(n)
	within, err := ProgressWithin(merged, sh)
	if err != nil {
		t.Fatal(err)
	}
	if within.Pending != 0 || within.Done != hi-lo || within.Start != lo || within.End != hi {
		t.Fatalf("slice 1/4 of the merged file: %+v, want %d done in [%d, %d)", within, hi-lo, lo, hi)
	}
	other, err := ProgressWithin(merged, Shard{Index: 2, Count: 4})
	if err != nil {
		t.Fatal(err)
	}
	if other.Done != 0 || other.Pending == 0 {
		t.Fatalf("slice 2/4 should be untouched: %+v", other)
	}

	// A zero shard means the whole file — identical to Progress.
	whole, err := ProgressWithin(merged, Shard{})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Progress(merged)
	if err != nil {
		t.Fatal(err)
	}
	if whole.Done != plain.Done || whole.Pending != plain.Pending || whole.Done != hi-lo {
		t.Fatalf("zero-shard ProgressWithin %+v disagrees with Progress %+v", whole, plain)
	}

	// The window overrides the file's own label: asking the sharded source
	// checkpoint about a different slice counts that slice's statuses.
	foreign, err := ProgressWithin(ckpt, Shard{Index: 2, Count: 4})
	if err != nil {
		t.Fatal(err)
	}
	if foreign.Done != 0 {
		t.Fatalf("slice 2/4 of the shard-1 file reports %d done", foreign.Done)
	}

	if _, err := ProgressWithin(merged, Shard{Index: 9, Count: 4}); err == nil {
		t.Fatal("invalid shard accepted")
	}
}
