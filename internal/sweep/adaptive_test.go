package sweep

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"carbonexplorer/internal/explorer"
)

// adaptivePlan is the small refinement plan the adaptive tests share: coarse
// 3-point lattice, up to two subdivision rounds, 5% frontier tolerance.
func adaptivePlan() Plan {
	return Plan{Mode: ModeAdaptive, Tolerance: 0.05, MaxRounds: 2, CoarsePointsPerDim: 3}
}

// denseLatticeSpace expands the adaptive run's bounding box into the explicit
// dyadic lattice at the given depth — the dense grid an exhaustive sweep
// would need to match the adaptive run's final resolution.
func denseLatticeSpace(g explorer.CellGrid, space explorer.Space, avg float64, depth int) explorer.Space {
	axis := func(a int) []float64 {
		if !g.Free[a] {
			return []float64{g.Lo[a]}
		}
		n := g.PointsPerAxis(depth)
		vals := make([]float64, n)
		for k := range vals {
			vals[k] = g.Coord(a, k, depth)
		}
		return vals
	}
	battery := axis(explorer.AxisBattery)
	hours := make([]float64, len(battery))
	for i, b := range battery {
		hours[i] = b / avg
	}
	return explorer.Space{
		WindMW:             axis(explorer.AxisWind),
		SolarMW:            axis(explorer.AxisSolar),
		BatteryHours:       hours,
		ExtraCapacityFracs: axis(explorer.AxisExtra),
		DoD:                space.DoD,
		FlexibleRatio:      space.FlexibleRatio,
	}
}

// TestAdaptiveReachesDenseFrontier is the quantifying acceptance test for the
// adaptive mode: the refinement must reach the dense dyadic grid's Pareto
// frontier within the plan's tolerance while evaluating at least 10x fewer
// designs.
func TestAdaptiveReachesDenseFrontier(t *testing.T) {
	in := testInputs(t)
	space := testSpace(in)
	strategy := explorer.RenewablesBatteryCAS
	plan := adaptivePlan()

	got, err := Run(context.Background(), in, space, strategy, Options{Plan: plan})
	if err != nil {
		t.Fatalf("adaptive run: %v", err)
	}
	if got.Adaptive == nil || !got.Adaptive.Converged {
		t.Fatalf("adaptive run did not converge: %+v", got.Adaptive)
	}

	g, err := explorer.NewCellGrid(space, strategy, in.AvgDemandMW(), plan.CoarsePointsPerDim)
	if err != nil {
		t.Fatalf("NewCellGrid: %v", err)
	}
	dense := denseLatticeSpace(g, space, in.AvgDemandMW(), got.Adaptive.Round)
	want, err := Run(context.Background(), in, dense, strategy, Options{})
	if err != nil {
		t.Fatalf("dense run: %v", err)
	}

	if want.Report.Evaluated < 10*got.Report.Evaluated {
		t.Fatalf("adaptive saved too little: %d adaptive vs %d dense evaluations (want >= 10x)",
			got.Report.Evaluated, want.Report.Evaluated)
	}

	// Every dense frontier point must be dominated-within-tolerance by some
	// adaptive frontier point, with the slack measured against the dense
	// frontier's extent (the same absolute-slack rule pruning uses).
	opSlack, emSlack := frontierSlack(want.Frontier, plan.Tolerance)
	for _, q := range want.Frontier {
		ok := false
		for _, p := range got.Frontier {
			if float64(p.Operational) <= float64(q.Operational)+opSlack &&
				float64(p.Embodied) <= float64(q.Embodied)+emSlack {
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("dense frontier point (op=%.0f em=%.0f) not reached within tolerance %.2f",
				float64(q.Operational), float64(q.Embodied), plan.Tolerance)
		}
	}
	if float64(got.Optimal.Total()) > float64(want.Optimal.Total())*(1+plan.Tolerance) {
		t.Fatalf("adaptive optimum %.0f worse than dense optimum %.0f beyond tolerance",
			float64(got.Optimal.Total()), float64(want.Optimal.Total()))
	}
	t.Logf("adaptive: %d evaluations over %d rounds (%v); dense: %d evaluations (%.1fx saved)",
		got.Report.Evaluated, got.Adaptive.Round+1, got.Adaptive.RoundEvals,
		want.Report.Evaluated, float64(want.Report.Evaluated)/float64(got.Report.Evaluated))
}

// TestAdaptiveResumeConvergesToUninterrupted kills an adaptive sweep partway
// through a refinement round and resumes it: the resumed refinement must
// converge to the exact result — and the exact final checkpoint bytes — of an
// uninterrupted run.
func TestAdaptiveResumeConvergesToUninterrupted(t *testing.T) {
	in := testInputs(t)
	space := testSpace(in)
	strategy := explorer.RenewablesBatteryCAS
	dir := t.TempDir()
	cleanPath := filepath.Join(dir, "clean.json")
	chaosPath := filepath.Join(dir, "chaos.json")

	clean, err := Run(context.Background(), in, space, strategy,
		Options{Plan: adaptivePlan(), Checkpoint: CheckpointOptions{Path: cleanPath, Every: 10}})
	if err != nil {
		t.Fatalf("uninterrupted run: %v", err)
	}
	if !clean.Adaptive.Converged {
		t.Fatal("uninterrupted adaptive run did not converge")
	}
	round0 := clean.Adaptive.RoundEvals[0]
	if clean.Adaptive.Round == 0 {
		t.Fatal("refinement converged in the coarse round — nothing mid-refinement to interrupt")
	}

	// Cancel partway into round 1, after the coarse round completed.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var mu sync.Mutex
	started := 0
	in.EvalHook = func(explorer.Design) error {
		mu.Lock()
		started++
		if started == round0+10 {
			cancel()
		}
		mu.Unlock()
		return nil
	}
	partial, err := Run(ctx, in, space, strategy,
		Options{Plan: adaptivePlan(), Checkpoint: CheckpointOptions{Path: chaosPath, Every: 5}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run: want context.Canceled, got %v", err)
	}
	if partial.Adaptive == nil || partial.Adaptive.Round != 1 {
		t.Fatalf("cancellation missed round 1: %+v", partial.Adaptive)
	}

	in.EvalHook = nil
	resumed, err := Run(context.Background(), in, space, strategy,
		Options{Plan: adaptivePlan(), Checkpoint: CheckpointOptions{Path: chaosPath, Every: 10, Resume: true}})
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if !resumed.Adaptive.Converged {
		t.Fatal("resumed refinement did not converge")
	}
	if resumed.Report.Restored == 0 {
		t.Fatal("resume restored nothing — the mid-round checkpoint was ignored")
	}
	if resumed.Report.Evaluated != clean.Report.Evaluated {
		t.Fatalf("resumed refinement evaluated %d designs, clean %d",
			resumed.Report.Evaluated, clean.Report.Evaluated)
	}
	if !sameOutcome(resumed.Optimal, clean.Optimal) {
		t.Fatalf("resumed optimum differs:\nresumed: %+v\nclean:   %+v",
			resumed.Optimal.Design, clean.Optimal.Design)
	}
	if len(resumed.Frontier) != len(clean.Frontier) {
		t.Fatalf("resumed frontier has %d points, clean %d", len(resumed.Frontier), len(clean.Frontier))
	}
	for i := range clean.Frontier {
		if !sameOutcome(resumed.Frontier[i], clean.Frontier[i]) {
			t.Fatalf("frontier point %d differs after resume", i)
		}
	}
	assertSameFileBytes(t, cleanPath, chaosPath)
}

// TestAdaptiveShardedMergeMatchesSingleProcess drives the sharded adaptive
// operator loop — run each shard, merge, copy the merged file back, resume —
// and requires the final converged checkpoint to be byte-identical to the
// single-process run's.
func TestAdaptiveShardedMergeMatchesSingleProcess(t *testing.T) {
	in := testInputs(t)
	space := testSpace(in)
	strategy := explorer.RenewablesBatteryCAS
	dir := t.TempDir()
	soloPath := filepath.Join(dir, "solo.json")

	solo, err := Run(context.Background(), in, space, strategy,
		Options{Plan: adaptivePlan(), Checkpoint: CheckpointOptions{Path: soloPath, Every: 10}})
	if err != nil {
		t.Fatalf("single-process run: %v", err)
	}
	if !solo.Adaptive.Converged {
		t.Fatal("single-process adaptive run did not converge")
	}

	shardPaths := []string{filepath.Join(dir, "w1.json"), filepath.Join(dir, "w2.json")}
	mergedPath := filepath.Join(dir, "merged.json")
	shardEvals := 0
	var results [2]Result
	for cycle := 0; ; cycle++ {
		if cycle > 10 {
			t.Fatal("sharded refinement did not converge within 10 merge cycles")
		}
		for i := range shardPaths {
			plan := adaptivePlan()
			plan.Shard = Shard{Index: i + 1, Count: 2}
			res, err := Run(context.Background(), in, space, strategy,
				Options{Plan: plan, Checkpoint: CheckpointOptions{Path: shardPaths[i], Every: 5, Resume: true}})
			if err != nil {
				t.Fatalf("cycle %d shard %d: %v", cycle, i+1, err)
			}
			shardEvals += res.Report.Evaluated - res.Report.Restored
			results[i] = res
		}
		if results[0].Adaptive.Converged && results[1].Adaptive.Converged {
			break
		}
		if _, err := MergeCheckpoints(mergedPath, shardPaths...); err != nil {
			t.Fatalf("cycle %d merge: %v", cycle, err)
		}
		merged, err := os.ReadFile(mergedPath)
		if err != nil {
			t.Fatalf("read merged: %v", err)
		}
		for _, p := range shardPaths {
			if err := os.WriteFile(p, merged, 0o644); err != nil {
				t.Fatalf("republish merged checkpoint: %v", err)
			}
		}
	}

	assertSameFileBytes(t, soloPath, shardPaths[0])
	assertSameFileBytes(t, soloPath, shardPaths[1])
	if !sameOutcome(results[0].Optimal, solo.Optimal) {
		t.Fatalf("sharded optimum differs from single-process:\nsharded: %+v\nsolo:    %+v",
			results[0].Optimal.Design, solo.Optimal.Design)
	}
}

// TestAdaptiveResumeRejectsExhaustiveCheckpoint: a version-2 exhaustive
// checkpoint must not silently seed an adaptive refinement.
func TestAdaptiveResumeRejectsExhaustiveCheckpoint(t *testing.T) {
	in := testInputs(t)
	space := testSpace(in)
	strategy := explorer.RenewablesBatteryCAS
	ckpt := filepath.Join(t.TempDir(), "sweep.json")

	if _, err := Run(context.Background(), in, space, strategy,
		Options{Checkpoint: CheckpointOptions{Path: ckpt}}); err != nil {
		t.Fatalf("exhaustive run: %v", err)
	}
	_, err := Run(context.Background(), in, space, strategy,
		Options{Plan: adaptivePlan(), Checkpoint: CheckpointOptions{Path: ckpt, Resume: true}})
	if !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("adaptive resume of exhaustive checkpoint: want ErrCheckpointMismatch, got %v", err)
	}
}

// TestExhaustiveResumeRejectsAdaptiveCheckpoint is the mirror image: the
// exhaustive engine validates its space hash against the round hash in the
// version-3 file and refuses.
func TestExhaustiveResumeRejectsAdaptiveCheckpoint(t *testing.T) {
	in := testInputs(t)
	space := testSpace(in)
	strategy := explorer.RenewablesBatteryCAS
	ckpt := filepath.Join(t.TempDir(), "sweep.json")

	if _, err := Run(context.Background(), in, space, strategy,
		Options{Plan: adaptivePlan(), Checkpoint: CheckpointOptions{Path: ckpt}}); err != nil {
		t.Fatalf("adaptive run: %v", err)
	}
	_, err := Run(context.Background(), in, space, strategy,
		Options{Checkpoint: CheckpointOptions{Path: ckpt, Resume: true}})
	if !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("exhaustive resume of adaptive checkpoint: want ErrCheckpointMismatch, got %v", err)
	}
}

// TestAdaptiveConvergedFastForward: resuming a finished refinement returns
// the recorded result without evaluating a single design, and leaves the
// converged checkpoint bytes untouched.
func TestAdaptiveConvergedFastForward(t *testing.T) {
	in := testInputs(t)
	space := testSpace(in)
	strategy := explorer.RenewablesBatteryCAS
	ckpt := filepath.Join(t.TempDir(), "sweep.json")

	first, err := Run(context.Background(), in, space, strategy,
		Options{Plan: adaptivePlan(), Checkpoint: CheckpointOptions{Path: ckpt, Every: 10}})
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	before, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatalf("read converged checkpoint: %v", err)
	}

	evals := 0
	var mu sync.Mutex
	in.EvalHook = func(explorer.Design) error {
		mu.Lock()
		evals++
		mu.Unlock()
		return nil
	}
	defer func() { in.EvalHook = nil }()
	again, err := Run(context.Background(), in, space, strategy,
		Options{Plan: adaptivePlan(), Checkpoint: CheckpointOptions{Path: ckpt, Resume: true}})
	if err != nil {
		t.Fatalf("fast-forward run: %v", err)
	}
	if evals != 0 {
		t.Fatalf("fast-forward evaluated %d designs; want 0", evals)
	}
	if !again.Resumed || again.Report.Restored == 0 {
		t.Fatalf("fast-forward did not report restored progress: %+v", again.Report)
	}
	if !again.Adaptive.Converged || again.Adaptive.Round != first.Adaptive.Round {
		t.Fatalf("fast-forward progress differs: %+v vs %+v", again.Adaptive, first.Adaptive)
	}
	if again.Report.Evaluated != first.Report.Evaluated {
		t.Fatalf("fast-forward evaluated count %d, first run %d",
			again.Report.Evaluated, first.Report.Evaluated)
	}
	if !sameOutcome(again.Optimal, first.Optimal) {
		t.Fatal("fast-forward optimum differs from the recorded one")
	}
	after, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatalf("re-read converged checkpoint: %v", err)
	}
	if string(before) != string(after) {
		t.Fatal("fast-forward rewrote the converged checkpoint")
	}
}

// TestPlanValidation exercises the Plan knob validation that Run performs up
// front, before any evaluation.
func TestPlanValidation(t *testing.T) {
	in := testInputs(t)
	space := testSpace(in)
	strategy := explorer.RenewablesBatteryCAS
	run := func(p Plan) error {
		_, err := Run(context.Background(), in, space, strategy, Options{Plan: p})
		return err
	}
	cases := []struct {
		name string
		plan Plan
		want string
	}{
		{"adaptive knob under exhaustive", Plan{Tolerance: 0.1}, "require ModeAdaptive"},
		{"rounds knob under exhaustive", Plan{MaxRounds: 2}, "require ModeAdaptive"},
		{"negative tolerance", Plan{Mode: ModeAdaptive, Tolerance: -0.1}, "out of [0, 1)"},
		{"tolerance of one", Plan{Mode: ModeAdaptive, Tolerance: 1}, "out of [0, 1)"},
		{"negative rounds", Plan{Mode: ModeAdaptive, MaxRounds: -1}, "negative MaxRounds"},
		{"one-point lattice", Plan{Mode: ModeAdaptive, CoarsePointsPerDim: 1}, "at least 2"},
		{"unknown mode", Plan{Mode: Mode(7)}, "unknown plan mode"},
		{"bad shard", Plan{Shard: Shard{Index: 3, Count: 2}}, "out of range"},
	}
	for _, tc := range cases {
		err := run(tc.plan)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: want error containing %q, got %v", tc.name, tc.want, err)
		}
	}
}

// TestPlanShardSubsumesLegacyShard: the deprecated Options.Shard keeps
// working, and a non-zero Plan.Shard wins when both are set.
func TestPlanShardSubsumesLegacyShard(t *testing.T) {
	in := testInputs(t)
	space := testSpace(in)
	strategy := explorer.RenewablesBatteryCAS

	legacy, err := Run(context.Background(), in, space, strategy,
		Options{Shard: Shard{Index: 1, Count: 2}})
	if err != nil {
		t.Fatalf("legacy shard run: %v", err)
	}
	planned, err := Run(context.Background(), in, space, strategy,
		Options{Plan: Plan{Shard: Shard{Index: 1, Count: 2}}})
	if err != nil {
		t.Fatalf("plan shard run: %v", err)
	}
	if legacy.Report.OutOfShard != planned.Report.OutOfShard || legacy.Report.Evaluated != planned.Report.Evaluated {
		t.Fatalf("legacy and plan shard runs diverge: %+v vs %+v", legacy.Report, planned.Report)
	}

	// Conflicting values: Plan.Shard wins (shard 2/2 evaluates the other
	// half of the space than shard 1/2).
	both, err := Run(context.Background(), in, space, strategy,
		Options{Shard: Shard{Index: 1, Count: 2}, Plan: Plan{Shard: Shard{Index: 2, Count: 2}}})
	if err != nil {
		t.Fatalf("conflicting shard run: %v", err)
	}
	if both.Optimal.Design == legacy.Optimal.Design && both.Report.Evaluated == legacy.Report.Evaluated {
		t.Fatal("Plan.Shard did not take precedence over the deprecated Options.Shard")
	}
}

// assertSameFileBytes fails unless the two files have identical contents.
func assertSameFileBytes(t *testing.T, a, b string) {
	t.Helper()
	ab, err := os.ReadFile(a)
	if err != nil {
		t.Fatalf("read %s: %v", a, err)
	}
	bb, err := os.ReadFile(b)
	if err != nil {
		t.Fatalf("read %s: %v", b, err)
	}
	if string(ab) != string(bb) {
		t.Fatalf("checkpoints differ:\n%s:\n%s\n%s:\n%s", a, ab, b, bb)
	}
}

// BenchmarkAdaptiveVsDense times an adaptive refinement against the
// exhaustive sweep of the dense lattice the refinement resolves to — the
// benchmark evidence behind the evals-saved numbers in BENCH_sweep.json.
// The custom metrics report the evaluation counts so a regression in
// pruning effectiveness (adaptive evaluating more of the lattice) shows up
// even if per-design time is unchanged.
func BenchmarkAdaptiveVsDense(b *testing.B) {
	in := testInputs(b)
	space := testSpace(in)
	strategy := explorer.RenewablesBatteryCAS
	plan := adaptivePlan()
	g, err := explorer.NewCellGrid(space, strategy, in.AvgDemandMW(), plan.CoarsePointsPerDim)
	if err != nil {
		b.Fatal(err)
	}

	b.Run("adaptive", func(b *testing.B) {
		evals := 0
		for i := 0; i < b.N; i++ {
			res, err := Run(context.Background(), in, space, strategy, Options{Plan: plan})
			if err != nil {
				b.Fatal(err)
			}
			evals = res.Report.Evaluated
		}
		b.ReportMetric(float64(evals), "evals")
	})
	b.Run("dense", func(b *testing.B) {
		dense := denseLatticeSpace(g, space, in.AvgDemandMW(), plan.MaxRounds)
		evals := 0
		for i := 0; i < b.N; i++ {
			res, err := Run(context.Background(), in, dense, strategy, Options{})
			if err != nil {
				b.Fatal(err)
			}
			evals = res.Report.Evaluated
		}
		b.ReportMetric(float64(evals), "evals")
	})
}
