package sweep

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"carbonexplorer/internal/explorer"
)

func TestParseShard(t *testing.T) {
	valid := []struct {
		spec string
		want Shard
	}{
		{"", Shard{}},
		{"1/1", Shard{1, 1}},
		{"2/3", Shard{2, 3}},
		{"10/10", Shard{10, 10}},
	}
	for _, c := range valid {
		got, err := ParseShard(c.spec)
		if err != nil {
			t.Fatalf("ParseShard(%q): %v", c.spec, err)
		}
		if got != c.want {
			t.Fatalf("ParseShard(%q) = %+v, want %+v", c.spec, got, c.want)
		}
	}

	invalid := []string{
		"0/3",   // index below range
		"4/3",   // index above range
		"-1/3",  // negative index
		"1/0",   // zero count
		"1/-2",  // negative count
		"a/3",   // non-numeric index
		"1/b",   // non-numeric count
		"3",     // missing slash
		"1/2/3", // too many parts
		"1.5/3", // non-integer
		" 1/3",  // stray whitespace
	}
	for _, spec := range invalid {
		if _, err := ParseShard(spec); !errors.Is(err, ErrBadShard) {
			t.Fatalf("ParseShard(%q): want ErrBadShard, got %v", spec, err)
		}
	}
}

// TestShardStringRoundTrips: String and ParseShard are inverses for every
// valid shard, including the zero shard's empty label.
func TestShardStringRoundTrips(t *testing.T) {
	for _, s := range []Shard{{}, {1, 1}, {2, 5}, {5, 5}} {
		got, err := ParseShard(s.String())
		if err != nil {
			t.Fatalf("round trip %+v: %v", s, err)
		}
		if got != s {
			t.Fatalf("round trip %+v came back as %+v", s, got)
		}
	}
}

// TestPlanShardsPartitions: for a spread of (n, count) pairs, the planned
// slices must be contiguous, non-overlapping, covering, balanced to within
// one design, and identical across calls — the contract that lets workers
// shard with no coordination.
func TestPlanShardsPartitions(t *testing.T) {
	for _, n := range []int{0, 1, 2, 5, 49, 100, 101, 1000} {
		for _, count := range []int{1, 2, 3, 7, 49, 100, 150} {
			plans, err := PlanShards(n, count)
			if err != nil {
				t.Fatalf("PlanShards(%d, %d): %v", n, count, err)
			}
			if len(plans) != count {
				t.Fatalf("PlanShards(%d, %d): %d plans", n, count, len(plans))
			}
			next := 0
			minSize, maxSize := n, 0
			for i, p := range plans {
				if p.Shard != (Shard{Index: i + 1, Count: count}) {
					t.Fatalf("plan %d has shard %+v", i, p.Shard)
				}
				if p.Start != next {
					t.Fatalf("PlanShards(%d, %d): plan %d starts at %d, want %d (gap or overlap)", n, count, i, p.Start, next)
				}
				if p.Size() < 0 {
					t.Fatalf("negative slice size %d", p.Size())
				}
				if lo, hi := p.Shard.Bounds(n); lo != p.Start || hi != p.End {
					t.Fatalf("Bounds(%d) of %s = [%d,%d), plan says [%d,%d)", n, p.Shard, lo, hi, p.Start, p.End)
				}
				if p.Size() < minSize {
					minSize = p.Size()
				}
				if p.Size() > maxSize {
					maxSize = p.Size()
				}
				next = p.End
			}
			if next != n {
				t.Fatalf("PlanShards(%d, %d): plans cover [0,%d), want [0,%d)", n, count, next, n)
			}
			if maxSize-minSize > 1 {
				t.Fatalf("PlanShards(%d, %d): unbalanced slices, sizes span [%d,%d]", n, count, minSize, maxSize)
			}
		}
	}
	if _, err := PlanShards(10, 0); !errors.Is(err, ErrBadShard) {
		t.Fatalf("PlanShards(10, 0): want ErrBadShard, got %v", err)
	}
	if _, err := PlanShards(-1, 3); err == nil {
		t.Fatal("PlanShards(-1, 3): negative design count accepted")
	}
}

// TestShardedRunsMergeToSingleProcess is the core tentpole property at the
// engine level: running every shard of a partitioned space to completion and
// merging their checkpoints must reproduce exactly the optimum and Pareto
// frontier of one unsharded Run — and resuming the merged checkpoint must
// find no work left.
func TestShardedRunsMergeToSingleProcess(t *testing.T) {
	in := testInputs(t)
	space := testSpace(in)
	dir := t.TempDir()

	clean, err := Run(context.Background(), in, space, explorer.RenewablesBatteryCAS, Options{})
	if err != nil {
		t.Fatalf("unsharded run: %v", err)
	}

	const shards = 3
	var paths []string
	for i := 1; i <= shards; i++ {
		ckpt := filepath.Join(dir, fmt.Sprintf("shard%d.json", i))
		res, err := Run(context.Background(), in, space, explorer.RenewablesBatteryCAS,
			Options{BatchSize: 5, Shard: Shard{Index: i, Count: shards}, Checkpoint: CheckpointOptions{Path: ckpt}})
		if err != nil {
			t.Fatalf("shard %d/%d: %v", i, shards, err)
		}
		if res.Report.OutOfShard == 0 {
			t.Fatalf("shard %d/%d claims the whole space", i, shards)
		}
		if res.Report.Skipped != 0 {
			t.Fatalf("completed shard %d/%d skipped %d designs", i, shards, res.Report.Skipped)
		}
		paths = append(paths, ckpt)
	}

	merged := filepath.Join(dir, "merged.json")
	rep, err := MergeCheckpoints(merged, paths...)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	if !rep.Complete() {
		t.Fatalf("merge of complete shards reports pending work: %+v", rep)
	}
	if rep.Done != clean.Report.Evaluated {
		t.Fatalf("merged %d done designs, clean run evaluated %d", rep.Done, clean.Report.Evaluated)
	}
	if len(rep.Inputs) != shards {
		t.Fatalf("merge report lists %d inputs, want %d", len(rep.Inputs), shards)
	}
	var sliceSum int
	for _, p := range rep.Inputs {
		sliceSum += p.End - p.Start
	}
	if sliceSum != rep.Total {
		t.Fatalf("shard slices cover %d designs, space has %d", sliceSum, rep.Total)
	}

	final, err := Run(context.Background(), in, space, explorer.RenewablesBatteryCAS,
		Options{Checkpoint: CheckpointOptions{Path: merged, Resume: true}})
	if err != nil {
		t.Fatalf("resume of merged checkpoint: %v", err)
	}
	if final.Report.Restored != clean.Report.Evaluated {
		t.Fatalf("merged resume restored %d designs, want all %d", final.Report.Restored, clean.Report.Evaluated)
	}
	if !sameOutcome(final.Optimal, clean.Optimal) {
		t.Fatalf("merged optimum differs:\nmerged: %+v\nclean:  %+v", final.Optimal.Design, clean.Optimal.Design)
	}
	if len(final.Frontier) != len(clean.Frontier) {
		t.Fatalf("merged frontier has %d points, clean has %d", len(final.Frontier), len(clean.Frontier))
	}
	for i := range clean.Frontier {
		if !sameOutcome(final.Frontier[i], clean.Frontier[i]) {
			t.Fatalf("frontier point %d differs after merge: %+v vs %+v",
				i, final.Frontier[i].Design, clean.Frontier[i].Design)
		}
	}
}

// TestShardCheckpointRejectsWrongShard: a checkpoint written by shard i/N
// must not resume under a different slice — that would orphan the designs
// between the two slices.
func TestShardCheckpointRejectsWrongShard(t *testing.T) {
	in := testInputs(t)
	space := testSpace(in)
	ckpt := filepath.Join(t.TempDir(), "shard1.json")

	if _, err := Run(context.Background(), in, space, explorer.RenewablesBatteryCAS,
		Options{Shard: Shard{1, 3}, Checkpoint: CheckpointOptions{Path: ckpt}}); err != nil {
		t.Fatalf("shard 1/3: %v", err)
	}
	_, err := Run(context.Background(), in, space, explorer.RenewablesBatteryCAS,
		Options{Shard: Shard{2, 3}, Checkpoint: CheckpointOptions{Path: ckpt, Resume: true}})
	if !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("resuming shard 1/3's checkpoint as 2/3: want ErrCheckpointMismatch, got %v", err)
	}
	// The same shard resumes its own checkpoint fine.
	if _, err := Run(context.Background(), in, space, explorer.RenewablesBatteryCAS,
		Options{Shard: Shard{1, 3}, Checkpoint: CheckpointOptions{Path: ckpt, Resume: true}}); err != nil {
		t.Fatalf("same-shard resume: %v", err)
	}
	// And an unsharded run may adopt it whole (lost-shard recovery).
	res, err := Run(context.Background(), in, space, explorer.RenewablesBatteryCAS,
		Options{Checkpoint: CheckpointOptions{Path: ckpt, Resume: true}})
	if err != nil {
		t.Fatalf("unsharded adoption: %v", err)
	}
	if res.Report.Skipped != 0 || res.Report.OutOfShard != 0 {
		t.Fatalf("unsharded adoption left work behind: %+v", res.Report)
	}
}

// TestEmptyShardIsNoop: with more shards than designs, trailing shards get
// empty slices; running one completes immediately without fabricating an
// ErrAllDesignsFailed.
func TestEmptyShardIsNoop(t *testing.T) {
	in := testInputs(t)
	space := denseSpace(in, 2) // 4 designs
	res, err := Run(context.Background(), in, space, explorer.RenewablesOnly,
		Options{Shard: Shard{5, 5}})
	if err != nil {
		t.Fatalf("empty shard: %v", err)
	}
	if res.Report.Evaluated != 0 || res.Report.OutOfShard != 4 {
		t.Fatalf("empty shard evaluated something: %+v", res.Report)
	}
}

// TestInvalidShardOptionRejected: programmatic use of a malformed shard is
// an error, not a silent whole-space sweep.
func TestInvalidShardOptionRejected(t *testing.T) {
	in := testInputs(t)
	_, err := Run(context.Background(), in, testSpace(in), explorer.RenewablesOnly,
		Options{Shard: Shard{4, 3}})
	if !errors.Is(err, ErrBadShard) {
		t.Fatalf("want ErrBadShard, got %v", err)
	}
}
