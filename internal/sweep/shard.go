package sweep

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// ErrBadShard is returned (wrapped) when a shard specification is malformed
// or out of range: index or count non-numeric, count < 1, or index outside
// [1, count].
var ErrBadShard = errors.New("sweep: invalid shard")

// Shard identifies one worker's contiguous slice of a sweep's design
// enumeration, written "index/count" (1-based): shard 2/3 is the middle
// third. The zero value means "unsharded" — the whole space.
//
// Sharding is a pure function of the enumeration length and the shard
// count: every worker running PlanShards (or Shard.Bounds) over the same
// space computes the same partition, so shards can be launched on separate
// machines with no coordination beyond agreeing on i/N.
type Shard struct {
	// Index is the 1-based shard number, in [1, Count].
	Index int
	// Count is the total number of shards the space is split into.
	Count int
}

// IsZero reports whether s is the zero Shard, meaning an unsharded sweep.
func (s Shard) IsZero() bool { return s == Shard{} }

// String formats the shard as "index/count"; the zero shard formats as "".
func (s Shard) String() string {
	if s.IsZero() {
		return ""
	}
	return fmt.Sprintf("%d/%d", s.Index, s.Count)
}

// validate checks a non-zero shard's invariants.
func (s Shard) validate() error {
	if s.Count < 1 {
		return fmt.Errorf("%w %q: count %d < 1", ErrBadShard, s, s.Count)
	}
	if s.Index < 1 || s.Index > s.Count {
		return fmt.Errorf("%w %q: index %d out of range [1, %d]", ErrBadShard, s, s.Index, s.Count)
	}
	return nil
}

// ParseShard parses an "index/count" shard specification, e.g. "2/3". The
// empty string parses to the zero (unsharded) Shard. Rejections — missing
// slash, non-numeric parts, count < 1, index outside [1, count] — wrap
// ErrBadShard.
func ParseShard(spec string) (Shard, error) {
	if spec == "" {
		return Shard{}, nil
	}
	idxStr, cntStr, ok := strings.Cut(spec, "/")
	if !ok {
		return Shard{}, fmt.Errorf("%w %q: want the form index/count, e.g. 2/3", ErrBadShard, spec)
	}
	idx, err := strconv.Atoi(idxStr)
	if err != nil {
		return Shard{}, fmt.Errorf("%w %q: index %q is not an integer", ErrBadShard, spec, idxStr)
	}
	cnt, err := strconv.Atoi(cntStr)
	if err != nil {
		return Shard{}, fmt.Errorf("%w %q: count %q is not an integer", ErrBadShard, spec, cntStr)
	}
	s := Shard{Index: idx, Count: cnt}
	if err := s.validate(); err != nil {
		return Shard{}, err
	}
	return s, nil
}

// Bounds returns the half-open index range [start, end) of this shard's
// slice of an n-design enumeration. Slices are contiguous, cover [0, n)
// exactly once across all Count shards, and are balanced: sizes differ by
// at most one design, with the earlier shards taking the remainder. The
// partition depends only on (n, Count), never on runtime state, so it is
// stable across resumes and across machines.
//
// Bounds panics if the shard is invalid; use validate/ParseShard first.
// The zero shard spans the whole enumeration.
func (s Shard) Bounds(n int) (start, end int) {
	if s.IsZero() {
		return 0, n
	}
	if err := s.validate(); err != nil {
		panic(err)
	}
	base, extra := n/s.Count, n%s.Count
	i := s.Index - 1
	start = i * base
	if i < extra {
		start += i
	} else {
		start += extra
	}
	end = start + base
	if i < extra {
		end++
	}
	return start, end
}

// ShardPlan pairs a shard with its concrete design-index range.
type ShardPlan struct {
	// Shard is the i/N identity of this slice.
	Shard Shard
	// Start and End delimit the half-open range [Start, End) of design
	// indices, in enumeration order, that this shard evaluates.
	Start, End int
}

// Size returns the number of designs in the plan's slice.
func (p ShardPlan) Size() int { return p.End - p.Start }

// PlanShards partitions an n-design enumeration into `count` contiguous,
// balanced slices — the deterministic partition every shard-aware sweep
// uses. Shards near the end of an enumeration may be empty when count > n;
// running an empty shard is a no-op, not an error.
//
// The returned plans are in shard order (1/count first). PlanShards is the
// coordination-free launch plan: give each worker its i/count and the same
// space, and the workers' Bounds agree with these plans exactly.
func PlanShards(n, count int) ([]ShardPlan, error) {
	if n < 0 {
		return nil, fmt.Errorf("sweep: PlanShards: negative design count %d", n)
	}
	if count < 1 {
		return nil, fmt.Errorf("%w: count %d < 1", ErrBadShard, count)
	}
	plans := make([]ShardPlan, count)
	for i := 1; i <= count; i++ {
		sh := Shard{Index: i, Count: count}
		start, end := sh.Bounds(n)
		plans[i-1] = ShardPlan{Shard: sh, Start: start, End: end}
	}
	return plans, nil
}
