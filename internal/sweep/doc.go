// Package sweep is the streaming, checkpointable, retrying design-space
// sweep engine — the production-scale version of the exhaustive search in
// Section 5.2 of the paper (the search behind Figures 14 and 15), built for
// grids far denser than the paper's 7×7×6×5 example.
//
// explorer.Search materializes one Outcome per design and keeps them all;
// over a dense Space that is gigabytes of state, and an interrupted sweep
// forgets everything. This package evaluates designs in bounded batches and
// folds each outcome into exactly two accumulators — the running carbon
// optimum and the running Pareto frontier (explorer.ParetoSet) — so resident
// memory is O(batch + frontier) regardless of grid density. Designs whose
// evaluation fails transiently are retried once before being excluded from
// the optimum, and progress persists across process deaths via a versioned
// JSON checkpoint.
//
// # Sharding
//
// A sweep can be split across workers with Options.Shard. Shard i/N claims
// the i-th of N contiguous slices of the design enumeration (Shard.Bounds,
// PlanShards); the partition is a pure function of the enumeration length
// and N, so workers on separate machines agree on it with no coordination
// beyond the i/N label. Each shard folds only its own slice but writes a
// full-length status string (out-of-shard designs stay pending), which is
// what makes shard checkpoints mergeable: MergeCheckpoints joins any set of
// shard checkpoints — complete or partial, even overlapping attempts of the
// same shard — into one ordinary unsharded checkpoint that Run with
// Options.Checkpoint.Resume accepts directly. Because the Pareto fold is associative
// (frontier(A ∪ B) = frontier(frontier(A) ∪ frontier(B))) and merge folds
// inputs in slice order, the merged optimum and frontier are identical to a
// single-process sweep's, tie-breaking included. Lost-shard recovery is
// therefore just: merge the surviving checkpoints, resume the merged file.
//
// # Checkpoint format
//
// The checkpoint is a single JSON document. Writers emit schema version 2;
// the loader accepts versions 1 and 2.
//
//	{
//	 "version": 2,
//	 "space_hash": "<fnv64a over site, strategy, inputs fingerprint, and every design>",
//	 "site": "UT",
//	 "strategy": 3,
//	 "designs": 1960,               // enumeration length (v2)
//	 "shard": "2/3",                // writing shard, "" / absent if unsharded (v2)
//	 "status": "653P650D1F656P",    // run-length encoded, in enumeration order (v2)
//	 "retried": 1, "recovered": 1,  // retry-pass accounting
//	 "best": {...},                 // running optimum (compact outcome)
//	 "frontier": [{...}, ...],      // running Pareto frontier
//	 "failures": [{"design": ..., "index": 1303, "error": "...", "permanent": false}]
//	}
//
// Status runes: P pending, D done, F failed once (retry pending), X failed
// permanently. Version 1 stored the status as one raw rune per design
// ("DDDDFPPP..."); version 2 run-length encodes it as count+rune pairs
// ("4D1F3P"), which collapses the realistic shape — long done prefix, few
// scattered failures, long pending tail — to a few dozen bytes even for
// multi-million-design spaces (the ROADMAP checkpoint-compaction item).
// Version 2 also records the enumeration length ("designs"), the writing
// shard's i/N label, and each failure's enumeration index (so a merge can
// drop failure records that a later attempt completed; v1 files load with
// index -1, meaning unknown).
//
// The space hash fingerprints everything that determines the enumeration,
// so a checkpoint can never be resumed against a different site, strategy,
// space, or input year — and shards of different sweeps can never merge.
// Note the hash covers the FULL enumeration, not the shard's slice: all
// shards of one sweep share it. Saves are atomic (write-temp-then-rename)
// and happen every Options.Checkpoint.Every evaluated designs, on
// cancellation, and on completion.
//
// Outcomes in the checkpoint (and in the streamed fold) drop the hourly
// battery state-of-charge trace; re-Evaluate a design to recover one.
//
// # Resume semantics
//
// Run with Options.Checkpoint.Resume loads the checkpoint, restores the fold state,
// skips every done design, and retries failed-once designs. Because designs
// are folded in deterministic enumeration order, a sweep killed at any point
// and resumed converges to the same optimum and the same Pareto frontier as
// an uninterrupted run — the property the faultinject chaos tests enforce.
//
// Shard labels are checked on resume: shard i/N resumes its own checkpoint,
// an unsharded run may adopt any shard's checkpoint whole (lost-shard
// recovery), and a sharded run may resume an unsharded or merged checkpoint
// (re-splitting the remainder); resuming shard i/N's file as a different
// shard j/M is rejected with ErrCheckpointMismatch, because the designs
// between the two slices would be silently orphaned.
package sweep
