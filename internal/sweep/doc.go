// Package sweep is the streaming, checkpointable, retrying design-space
// sweep engine — the production-scale version of the exhaustive search in
// Section 5.2 of the paper (the search behind Figures 14 and 15), built for
// grids far denser than the paper's 7×7×6×5 example.
//
// explorer.Search materializes one Outcome per design and keeps them all;
// over a dense Space that is gigabytes of state, and an interrupted sweep
// forgets everything. This package evaluates designs in bounded batches and
// folds each outcome into exactly two accumulators — the running carbon
// optimum and the running Pareto frontier (explorer.ParetoSet) — so resident
// memory is O(batch + frontier) regardless of grid density. Designs whose
// evaluation fails transiently are retried once before being excluded from
// the optimum, and progress persists across process deaths via a versioned
// JSON checkpoint.
//
// # Checkpoint format
//
// The checkpoint is a single JSON document (schema version 1):
//
//	{
//	 "version": 1,
//	 "space_hash": "<fnv64a over site, strategy, inputs fingerprint, and every design>",
//	 "site": "UT",
//	 "strategy": 3,
//	 "status": "DDDDFPPP...",      // one rune per design, in enumeration order
//	 "retried": 1, "recovered": 1, // retry-pass accounting
//	 "best": {...},                // running optimum (compact outcome)
//	 "frontier": [{...}, ...],     // running Pareto frontier
//	 "failures": [{"design": ..., "error": "...", "permanent": false}]
//	}
//
// Status runes: P pending, D done, F failed once (retry pending), X failed
// permanently. The space hash fingerprints everything that determines the
// enumeration, so a checkpoint can never be resumed against a different
// site, strategy, space, or input year. Saves are atomic
// (write-temp-then-rename) and happen every Options.CheckpointEvery
// evaluated designs, on cancellation, and on completion.
//
// Outcomes in the checkpoint (and in the streamed fold) drop the hourly
// battery state-of-charge trace; re-Evaluate a design to recover one.
//
// # Resume semantics
//
// Run with Options.Resume loads the checkpoint, restores the fold state,
// skips every done design, and retries failed-once designs. Because designs
// are folded in deterministic enumeration order, a sweep killed at any point
// and resumed converges to the same optimum and the same Pareto frontier as
// an uninterrupted run — the property the faultinject chaos tests enforce.
package sweep
