package sweep

// Deterministic jittered exponential backoff.
//
// Retry timing must not disturb reproducibility: an interrupted-and-resumed
// sweep has to re-derive the same retry schedule, and the detrand analyzer
// forbids the process-global random source in this package. Delays are
// therefore a pure function of a seed, the attempt number, and the
// configured base — a SplitMix64 draw supplies the jitter, so two runs of
// the same sweep wait the same spans without any shared state.

import "time"

// splitmix64 advances a SplitMix64 state and returns the next draw. It is
// the same tiny generator internal/faultinject uses, duplicated here so the
// sweep engine does not depend on the chaos harness.
func splitmix64(state uint64) uint64 {
	state += 0x9e3779b97f4a7c15
	z := state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// BackoffDelay computes the deterministic jittered exponential backoff for
// the given retry attempt (1-based): base<<(attempt-1), multiplied by a
// seed-determined jitter factor in [0.5, 1.5), capped at max. The delay is
// a pure function of (seed, attempt, base, max), so repeated and resumed
// runs wait identical spans. A non-positive base or attempt yields zero.
func BackoffDelay(seed uint64, attempt int, base, max time.Duration) time.Duration {
	if base <= 0 || attempt <= 0 {
		return 0
	}
	d := base
	for a := 1; a < attempt; a++ {
		d *= 2
		if max > 0 && d >= max {
			d = max
			break
		}
	}
	// Jitter in [0.5, 1.5): decorrelates fleets retrying in lockstep while
	// staying reproducible for a fixed seed and attempt.
	draw := splitmix64(seed ^ uint64(attempt))
	jitter := 0.5 + float64(draw>>11)/float64(1<<53)
	d = time.Duration(float64(d) * jitter)
	if max > 0 && d > max {
		d = max
	}
	return d
}
