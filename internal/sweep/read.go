package sweep

import (
	"fmt"

	"carbonexplorer/internal/explorer"
)

// Checkpoint is the decoded, validated content of a sweep checkpoint file —
// the read-only view a serving layer builds its indexes from. It carries the
// precomputed fold results (optimum and Pareto frontier) plus the progress
// accounting, and none of the engine's mutable state: a Checkpoint cannot be
// resumed or saved, only read.
type Checkpoint struct {
	// Path is the file the checkpoint was read from.
	Path string
	// SpaceHash fingerprints the sweep (site, strategy, inputs, and every
	// design); see SpaceHash.
	SpaceHash string
	// Site is the swept site's short identifier (e.g. "UT").
	Site string
	// Strategy is the swept strategy.
	Strategy explorer.Strategy
	// Designs is the number of designs in the full space.
	Designs int
	// Shard is the slice the file was written under; the zero Shard means
	// the file covers the whole space (an unsharded or merged checkpoint).
	Shard Shard
	// Done, Pending, FailedOnce, and FailedPerm count the per-design
	// statuses over the full space.
	Done, Pending, FailedOnce, FailedPerm int
	// Best is the running carbon optimum, or nil if no design has been
	// folded yet. Its BatterySoC trace is empty (the streaming path drops
	// per-hour traces).
	Best *explorer.Outcome
	// Frontier is the running Pareto frontier in the (operational,
	// embodied) plane, sorted by increasing embodied carbon.
	Frontier []explorer.Outcome
	// Mode is "adaptive" for version-3 refinement checkpoints, "" for
	// exhaustive ones.
	Mode string
	// Round is the refinement round the checkpoint belongs to (adaptive
	// checkpoints only; 0 is the coarse pass).
	Round int
	// Converged reports a finished adaptive refinement: the file is the
	// final published result, not one round's working state.
	Converged bool
}

// Complete reports whether the sweep has no work left: every design is done
// or permanently failed.
func (c *Checkpoint) Complete() bool { return c.Pending == 0 && c.FailedOnce == 0 }

// ReadCheckpoint loads a checkpoint file for inspection or serving, without
// any resume semantics: no space re-enumeration, no status mutation, no
// engine state. It validates the schema version and the status encoding
// exactly like a resume would, so a file ReadCheckpoint accepts is one the
// engine would accept too.
//
// The returned frontier is sorted by increasing embodied carbon and, when a
// best outcome exists, is guaranteed to contain a point with the optimum's
// coordinates — the invariant read-optimized indexes (internal/serve) rely
// on to answer constraint queries from the frontier alone.
func ReadCheckpoint(path string) (*Checkpoint, error) {
	ck, err := loadCheckpoint(path)
	if err != nil {
		return nil, err
	}
	status, err := ck.statusBytes()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	shard, err := ck.shard()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := &Checkpoint{
		Path:      path,
		SpaceHash: ck.SpaceHash,
		Site:      ck.Site,
		Strategy:  explorer.Strategy(ck.Strategy),
		Designs:   len(status),
		Shard:     shard,
		Mode:      ck.Mode,
		Round:     ck.Round,
		Converged: ck.Converged,
	}
	out.Done, out.Pending, out.FailedOnce, out.FailedPerm = statusCounts(status, 0, len(status))

	// Fold the stored best into the frontier set: the total-carbon optimum
	// is never dominated in the (operational, embodied) plane — a dominator
	// would have strictly lower total — so this is a no-op for any
	// engine-written file, and it repairs hand-damaged ones into a frontier
	// that still answers optimum queries correctly.
	var ps explorer.ParetoSet
	if ck.Best != nil {
		b := ck.Best.outcome()
		out.Best = &b
		ps.Add(b)
	}
	for _, o := range ck.Frontier {
		ps.Add(o.outcome())
	}
	out.Frontier = ps.Frontier()
	return out, nil
}
