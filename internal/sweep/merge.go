package sweep

import (
	"fmt"
	"sort"

	"carbonexplorer/internal/explorer"
)

// ShardProgress summarizes one input checkpoint of a merge.
type ShardProgress struct {
	// Path is the checkpoint file.
	Path string
	// Shard is the slice label the file was written under; the zero Shard
	// means the file covers the whole space (an unsharded or merged
	// checkpoint).
	Shard Shard
	// Start and End delimit the shard's design-index slice ([0, Total) for
	// unsharded files).
	Start, End int
	// Done, Pending, FailedOnce, and FailedPerm count the design statuses
	// inside [Start, End).
	Done, Pending, FailedOnce, FailedPerm int
	// SpaceHash is the sweep fingerprint the checkpoint was written under,
	// so callers can validate a file against an expected sweep without
	// reloading it.
	SpaceHash string
}

// MergeReport accounts for a checkpoint merge: per-input shard progress and
// the merged space-wide totals.
type MergeReport struct {
	// Inputs describes each source checkpoint, in ascending slice order.
	Inputs []ShardProgress
	// Total is the number of designs in the full space.
	Total int
	// Done, Pending, FailedOnce, and FailedPerm count the merged statuses
	// over the full space. Pending > 0 means the merged checkpoint still
	// has work; resume it (sharded or not) to finish.
	Done, Pending, FailedOnce, FailedPerm int
}

// Complete reports whether the merged sweep has no work left: every design
// is done or permanently failed.
func (r MergeReport) Complete() bool { return r.Pending == 0 && r.FailedOnce == 0 }

// statusCounts tallies one slice of a status string.
func statusCounts(status []byte, lo, hi int) (done, pending, failedOnce, failedPerm int) {
	for _, s := range status[lo:hi] {
		switch s {
		case statusDone:
			done++
		case statusPending:
			pending++
		case statusFailedOnce:
			failedOnce++
		case statusFailedPerm:
			failedPerm++
		}
	}
	return
}

// Progress loads one checkpoint file and reports the per-status design
// counts inside its shard slice, without merging or modifying anything —
// the read-only inspection the network coordinator uses to verify a lease's
// uploaded checkpoint really finished its slice before marking it done.
func Progress(path string) (ShardProgress, error) {
	ck, err := loadCheckpoint(path)
	if err != nil {
		return ShardProgress{}, err
	}
	status, err := ck.statusBytes()
	if err != nil {
		return ShardProgress{}, fmt.Errorf("%s: %w", path, err)
	}
	shard, err := ck.shard()
	if err != nil {
		return ShardProgress{}, fmt.Errorf("%s: %w", path, err)
	}
	lo, hi := shard.Bounds(len(status))
	p := ShardProgress{Path: path, Shard: shard, Start: lo, End: hi, SpaceHash: ck.SpaceHash}
	p.Done, p.Pending, p.FailedOnce, p.FailedPerm = statusCounts(status, lo, hi)
	return p, nil
}

// ProgressWithin is Progress restricted to the given shard's slice,
// regardless of the shard label the file itself carries — how the network
// coordinator asks "does this (merged, hence unsharded) per-lease
// checkpoint finish lease i/L's designs?". The file must cover at least the
// slice; a shorter status string is a mismatch.
func ProgressWithin(path string, sh Shard) (ShardProgress, error) {
	ck, err := loadCheckpoint(path)
	if err != nil {
		return ShardProgress{}, err
	}
	status, err := ck.statusBytes()
	if err != nil {
		return ShardProgress{}, fmt.Errorf("%s: %w", path, err)
	}
	if err := sh.validate(); !sh.IsZero() && err != nil {
		return ShardProgress{}, err
	}
	lo, hi := sh.Bounds(len(status))
	p := ShardProgress{Path: path, Shard: sh, Start: lo, End: hi, SpaceHash: ck.SpaceHash}
	p.Done, p.Pending, p.FailedOnce, p.FailedPerm = statusCounts(status, lo, hi)
	return p, nil
}

// mergeInput is one loaded, validated source checkpoint.
type mergeInput struct {
	path   string
	ck     *checkpointFile
	shard  Shard
	status []byte
	start  int
	end    int
}

// MergeCheckpoints folds any set of shard checkpoint files — complete or
// partial, including several attempts of the same shard — into one merged
// checkpoint at dst, and reports per-shard and merged progress.
//
// Every source must carry the same space hash (same site, strategy, space,
// and inputs); a file from a different sweep is rejected with
// ErrCheckpointMismatch, never silently mixed. The merge is the associative
// fold the sharded design rests on: per-design statuses join (done beats
// failed beats pending), the optimum is the min over shard optima, and the
// Pareto frontier is explorer.ParetoSet.Add over all shard frontiers — so
// merging shard checkpoints of a partitioned space reproduces exactly the
// fold state of a single-process sweep over the designs those shards
// completed. Sources are folded in ascending slice order, which preserves
// the single-process enumeration-order tie-breaking for exactly tied
// optima and duplicate frontier coordinates.
//
// The merged checkpoint is unsharded: Run with Options.Checkpoint.Resume accepts it
// directly, either to finish remaining designs in one process or re-split
// across a new shard count. Merging is idempotent — a merged file can be
// merged again with late-arriving shards.
func MergeCheckpoints(dst string, srcs ...string) (MergeReport, error) {
	if len(srcs) == 0 {
		return MergeReport{}, fmt.Errorf("sweep: merge: no checkpoint files given")
	}
	inputs := make([]mergeInput, 0, len(srcs))
	for _, path := range srcs {
		ck, err := loadCheckpoint(path)
		if err != nil {
			return MergeReport{}, err
		}
		status, err := ck.statusBytes()
		if err != nil {
			return MergeReport{}, fmt.Errorf("%s: %w", path, err)
		}
		shard, err := ck.shard()
		if err != nil {
			return MergeReport{}, fmt.Errorf("%s: %w", path, err)
		}
		lo, hi := shard.Bounds(len(status))
		inputs = append(inputs, mergeInput{path: path, ck: ck, shard: shard, status: status, start: lo, end: hi})
	}

	ref := inputs[0]
	for _, in := range inputs[1:] {
		if in.ck.SpaceHash != ref.ck.SpaceHash {
			return MergeReport{}, fmt.Errorf("%w: %s has space hash %s, %s has %s",
				ErrCheckpointMismatch, in.path, in.ck.SpaceHash, ref.path, ref.ck.SpaceHash)
		}
		if len(in.status) != len(ref.status) {
			return MergeReport{}, fmt.Errorf("%w: %s covers %d designs, %s covers %d",
				ErrCheckpointMismatch, in.path, len(in.status), ref.path, len(ref.status))
		}
	}

	// Fold in ascending slice order so enumeration-order tie-breaking
	// matches a single-process sweep; the sort is stable so repeated
	// attempts of the same shard keep their given order.
	sort.SliceStable(inputs, func(i, j int) bool {
		if inputs[i].start != inputs[j].start {
			return inputs[i].start < inputs[j].start
		}
		return inputs[i].end < inputs[j].end
	})

	n := len(ref.status)
	merged := make([]byte, n)
	for i := range merged {
		merged[i] = statusPending
	}
	var best *savedOutcome
	var frontier explorer.ParetoSet
	// First-seen failure records, kept in fold order (not a map: iterating a
	// map below would make the merged file's contents order-dependent on the
	// runtime's map seed, breaking byte-stable merges).
	var failures []savedFailure
	seenFailure := make(map[explorer.Design]bool)
	retried, recovered := 0, 0

	rep := MergeReport{Total: n}
	for _, in := range inputs {
		for i, s := range in.status {
			merged[i] = joinStatus(merged[i], s)
		}
		if in.ck.Best != nil {
			o := in.ck.Best.outcome()
			if best == nil || betterOutcome(o, best.outcome()) {
				b := *in.ck.Best
				best = &b
			}
		}
		for _, f := range in.ck.Frontier {
			frontier.Add(f.outcome())
		}
		for _, f := range in.ck.Failures {
			if !seenFailure[f.Design] {
				seenFailure[f.Design] = true
				failures = append(failures, f)
			}
		}
		retried += in.ck.Retried
		recovered += in.ck.Recovered

		p := ShardProgress{Path: in.path, Shard: in.shard, Start: in.start, End: in.end, SpaceHash: in.ck.SpaceHash}
		p.Done, p.Pending, p.FailedOnce, p.FailedPerm = statusCounts(in.status, in.start, in.end)
		rep.Inputs = append(rep.Inputs, p)
	}
	rep.Done, rep.Pending, rep.FailedOnce, rep.FailedPerm = statusCounts(merged, 0, n)

	out := &checkpointFile{
		Version:   checkpointVersion,
		SpaceHash: ref.ck.SpaceHash,
		Site:      ref.ck.Site,
		Strategy:  ref.ck.Strategy,
		Designs:   n,
		Status:    encodeStatusRLE(merged),
		Retried:   retried,
		Recovered: recovered,
		Best:      best,
	}
	if ref.ck.Version == checkpointVersionV3 {
		// Adaptive round checkpoints: the round state is a pure function of
		// the round hash every input was validated against, so copying it
		// from the reference input preserves it for all.
		out.Version = checkpointVersionV3
		out.Mode = ref.ck.Mode
		out.BaseHash = ref.ck.BaseHash
		out.Round = ref.ck.Round
		out.Cells = ref.ck.Cells
		out.Prior = ref.ck.Prior
	}
	for _, o := range frontier.Frontier() {
		out.Frontier = append(out.Frontier, saveOutcome(o))
	}
	// Keep only failure records still telling a live story: a design whose
	// joined status is done was recovered by some shard attempt, so its
	// stale failure record is dropped. Records without an index (version-1
	// files) are kept — a resumed run re-derives relevance from the status
	// string and ignores failure causes for done designs.
	for _, f := range failures {
		if f.Index >= 0 && f.Index < n && merged[f.Index] == statusDone {
			continue
		}
		out.Failures = append(out.Failures, f)
	}
	sortFailures(out.Failures)

	if err := out.save(dst); err != nil {
		return MergeReport{}, err
	}
	return rep, nil
}

// MergeResults folds in-memory Results of shard (or lease) runs over
// disjoint slices of one sweep into the single-process Result. It is the
// in-memory sibling of MergeCheckpoints: the optimum folds with the same
// tie-breaking, the frontier with the same Pareto fold, and failures dedup
// first-seen per design — so folding slice results in ascending slice order
// reproduces exactly the single-process optimum, frontier, and failure
// ordering. Counters sum across inputs and MaxResident is the max;
// OutOfShard is recomputed from the first input's space-wide total so
// designs covered by any input stop counting as out-of-shard. The inputs
// must cover disjoint slices of the same sweep for the counts to be
// meaningful.
func MergeResults(results ...Result) Result {
	var out Result
	if len(results) == 0 {
		return out
	}
	out.Strategy = results[0].Strategy
	first := results[0].Report
	total := first.Evaluated + len(first.Failures) + first.Skipped + first.OutOfShard
	var best *explorer.Outcome
	var frontier explorer.ParetoSet
	seenFailure := make(map[explorer.Design]bool)
	for _, r := range results {
		if r.Report.Evaluated > 0 {
			o := r.Optimal
			if best == nil || betterOutcome(o, *best) {
				best = &o
			}
		}
		for _, f := range r.Frontier {
			frontier.Add(f)
		}
		for _, f := range r.Report.Failures {
			if !seenFailure[f.Design] {
				seenFailure[f.Design] = true
				out.Report.Failures = append(out.Report.Failures, f)
			}
		}
		out.Report.Evaluated += r.Report.Evaluated
		out.Report.Restored += r.Report.Restored
		out.Report.Skipped += r.Report.Skipped
		out.Report.Retried += r.Report.Retried
		out.Report.Recovered += r.Report.Recovered
		if r.Report.MaxResident > out.Report.MaxResident {
			out.Report.MaxResident = r.Report.MaxResident
		}
		out.Resumed = out.Resumed || r.Resumed
		out.Workers = append(out.Workers, r.Workers...)
	}
	if best != nil {
		out.Optimal = *best
	}
	out.Frontier = frontier.Frontier()
	if n := total - out.Report.Evaluated - len(out.Report.Failures) - out.Report.Skipped; n > 0 {
		out.Report.OutOfShard = n
	}
	return out
}

// joinStatus merges two observations of the same design's status across
// shard attempts. More-final states win: done (some attempt evaluated it)
// beats permanently failed beats failed-once beats pending.
func joinStatus(a, b byte) byte {
	rank := func(s byte) int {
		switch s {
		case statusDone:
			return 3
		case statusFailedPerm:
			return 2
		case statusFailedOnce:
			return 1
		default:
			return 0
		}
	}
	if rank(b) > rank(a) {
		return b
	}
	return a
}

// sortFailures orders failure records deterministically so merged
// checkpoints are byte-stable across runs.
func sortFailures(fs []savedFailure) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i].Design, fs[j].Design
		switch {
		case a.WindMW != b.WindMW: //carbonlint:allow floatcmp exact-bits sort key keeps merged checkpoints byte-stable
			return a.WindMW < b.WindMW
		case a.SolarMW != b.SolarMW: //carbonlint:allow floatcmp exact-bits sort key keeps merged checkpoints byte-stable
			return a.SolarMW < b.SolarMW
		case a.BatteryMWh != b.BatteryMWh: //carbonlint:allow floatcmp exact-bits sort key keeps merged checkpoints byte-stable
			return a.BatteryMWh < b.BatteryMWh
		case a.ExtraCapacityFrac != b.ExtraCapacityFrac: //carbonlint:allow floatcmp exact-bits sort key keeps merged checkpoints byte-stable
			return a.ExtraCapacityFrac < b.ExtraCapacityFrac
		default:
			return fs[i].Error < fs[j].Error
		}
	})
}
