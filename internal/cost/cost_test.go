package cost

import (
	"math"
	"testing"

	"carbonexplorer/internal/explorer"
	"carbonexplorer/internal/units"
)

func TestDefaultValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidation(t *testing.T) {
	bad := []func(*Params){
		func(p *Params) { p.SolarPerWatt = -1 },
		func(p *Params) { p.WindPerWatt = -1 },
		func(p *Params) { p.BatteryPerKWh = -1 },
		func(p *Params) { p.ServerUnit = -1 },
		func(p *Params) { p.ServerPowerKW = 0 },
	}
	for i, mutate := range bad {
		p := Default()
		mutate(&p)
		if p.Validate() == nil {
			t.Errorf("case %d should be invalid", i)
		}
	}
}

func TestDesignCapex(t *testing.T) {
	p := Default()
	d := explorer.Design{
		WindMW: 100, SolarMW: 200, BatteryMWh: 400, DoD: 1.0,
		FlexibleRatio: 0.4, ExtraCapacityFrac: 0.5,
	}
	b, err := p.DesignCapex(d, 20)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b.Wind-100e6*1.35) > 1 {
		t.Errorf("wind capex = %v", b.Wind)
	}
	if math.Abs(b.Solar-200e6*1.00) > 1 {
		t.Errorf("solar capex = %v", b.Solar)
	}
	// 400 MWh × 1000 kWh × $350 = $140M — the paper's "small fraction of a
	// billions-of-dollars datacenter".
	if math.Abs(b.Battery-140e6) > 1 {
		t.Errorf("battery capex = %v", b.Battery)
	}
	// 10 MW extra at 0.3 kW/server = 33,334 servers × $12k.
	if math.Abs(b.Servers-33334*12000) > 1 {
		t.Errorf("server capex = %v", b.Servers)
	}
	if math.Abs(b.Total()-(b.Wind+b.Solar+b.Battery+b.Servers)) > 1e-6 {
		t.Errorf("total inconsistent")
	}
}

func TestDesignCapexNoCASNoServers(t *testing.T) {
	p := Default()
	b, err := p.DesignCapex(explorer.Design{WindMW: 10, ExtraCapacityFrac: 0}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if b.Servers != 0 {
		t.Fatalf("no CAS should cost no servers")
	}
}

func TestDesignCapexRejectsInvalid(t *testing.T) {
	p := Default()
	if _, err := p.DesignCapex(explorer.Design{WindMW: -1}, 20); err == nil {
		t.Fatal("invalid design should error")
	}
	bad := Default()
	bad.ServerPowerKW = 0
	if _, err := bad.DesignCapex(explorer.Design{}, 20); err == nil {
		t.Fatal("invalid params should error")
	}
}

func mkPoint(capexMW float64, carbonKt, coverage float64) Point {
	return Point{
		Outcome: explorer.Outcome{
			Operational: units.FromTonnesCO2(carbonKt * 1000),
			CoveragePct: coverage,
		},
		Capex: Breakdown{Wind: capexMW * 1e6},
	}
}

func TestParetoCostCarbon(t *testing.T) {
	points := []Point{
		mkPoint(10, 100, 50), // frontier: cheapest
		mkPoint(20, 60, 70),  // frontier
		mkPoint(25, 80, 60),  // dominated by (20, 60)
		mkPoint(40, 20, 95),  // frontier
		mkPoint(50, 20, 96),  // dominated (same carbon, pricier)
	}
	f := ParetoCostCarbon(points)
	if len(f) != 3 {
		t.Fatalf("frontier size = %d, want 3", len(f))
	}
	for i := 1; i < len(f); i++ {
		if f[i].Capex.Total() < f[i-1].Capex.Total() {
			t.Fatalf("frontier not sorted by capex")
		}
		if f[i].Outcome.Total() >= f[i-1].Outcome.Total() {
			t.Fatalf("frontier carbon not strictly decreasing")
		}
	}
}

func TestCheapestAtCoverage(t *testing.T) {
	points := []Point{
		mkPoint(10, 100, 50),
		mkPoint(20, 60, 92),
		mkPoint(40, 20, 95),
	}
	best, ok := CheapestAtCoverage(points, 90)
	if !ok {
		t.Fatal("should find a qualifying point")
	}
	if best.Capex.Total() != 20e6 {
		t.Fatalf("cheapest at 90%% = %v", best.Capex.Total())
	}
	if _, ok := CheapestAtCoverage(points, 99); ok {
		t.Fatal("no point reaches 99%")
	}
	if _, ok := CheapestAtCoverage(nil, 1); ok {
		t.Fatal("empty input should not find anything")
	}
}

func TestAttach(t *testing.T) {
	p := Default()
	outcomes := []explorer.Outcome{
		{Design: explorer.Design{WindMW: 10}},
		{Design: explorer.Design{SolarMW: 5}},
	}
	pts, err := p.Attach(outcomes, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[0].Capex.Wind == 0 || pts[1].Capex.Solar == 0 {
		t.Fatalf("attach wrong: %+v", pts)
	}
	bad := []explorer.Outcome{{Design: explorer.Design{WindMW: -1}}}
	if _, err := p.Attach(bad, 20); err == nil {
		t.Fatal("invalid design should error")
	}
}
