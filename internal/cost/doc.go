// Package cost adds the capital-expenditure dimension the paper gestures at
// but does not model: it prices a datacenter design's renewable farms
// (per installed watt), battery (per kWh — the paper cites $350/kWh for
// utility-scale storage in Section 6), and extra servers, enabling
// carbon-versus-cost trade-off analysis on top of Carbon Explorer's
// carbon-versus-carbon one.
package cost
