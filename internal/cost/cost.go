package cost

import (
	"fmt"
	"math"
	"sort"

	"carbonexplorer/internal/explorer"
)

// Params holds capital-cost assumptions in dollars.
type Params struct {
	// SolarPerWatt is installed utility solar cost, $/W.
	SolarPerWatt float64
	// WindPerWatt is installed onshore wind cost, $/W.
	WindPerWatt float64
	// BatteryPerKWh is utility-scale battery cost, $/kWh (paper: $350).
	BatteryPerKWh float64
	// ServerUnit is the cost of one server, $.
	ServerUnit float64
	// ServerPowerKW converts extra capacity (MW) into server count; keep
	// consistent with the embodied model's figure.
	ServerPowerKW float64
}

// Default returns early-2020s utility-scale figures: $1.0/W solar, $1.35/W
// wind, the paper's $350/kWh battery, and a $12k dual-socket server at
// 0.3 kW provisioned.
func Default() Params {
	return Params{
		SolarPerWatt:  1.00,
		WindPerWatt:   1.35,
		BatteryPerKWh: 350,
		ServerUnit:    12000,
		ServerPowerKW: 0.3,
	}
}

// Validate reports the first invalid field, or nil.
func (p Params) Validate() error {
	switch {
	case p.SolarPerWatt < 0 || p.WindPerWatt < 0:
		return fmt.Errorf("cost: negative renewable cost")
	case p.BatteryPerKWh < 0:
		return fmt.Errorf("cost: negative battery cost")
	case p.ServerUnit < 0:
		return fmt.Errorf("cost: negative server cost")
	case p.ServerPowerKW <= 0:
		return fmt.Errorf("cost: server power must be positive")
	}
	return nil
}

// Breakdown is a design's capital expenditure in dollars.
type Breakdown struct {
	Wind    float64
	Solar   float64
	Battery float64
	Servers float64
}

// Total returns the summed capex.
func (b Breakdown) Total() float64 { return b.Wind + b.Solar + b.Battery + b.Servers }

// DesignCapex prices a design. peakDemandMW converts the design's extra
// capacity fraction into MW of servers.
func (p Params) DesignCapex(d explorer.Design, peakDemandMW float64) (Breakdown, error) {
	if err := p.Validate(); err != nil {
		return Breakdown{}, err
	}
	if err := d.Validate(); err != nil {
		return Breakdown{}, err
	}
	var b Breakdown
	b.Wind = d.WindMW * 1e6 * p.WindPerWatt
	b.Solar = d.SolarMW * 1e6 * p.SolarPerWatt
	b.Battery = d.BatteryMWh * 1000 * p.BatteryPerKWh
	if d.FlexibleRatio > 0 && d.ExtraCapacityFrac > 0 {
		extraMW := d.ExtraCapacityFrac * peakDemandMW
		servers := math.Ceil(extraMW / (p.ServerPowerKW / 1000))
		b.Servers = servers * p.ServerUnit
	}
	return b, nil
}

// Point pairs an evaluated design with its capex, for cost-carbon Pareto
// analysis.
type Point struct {
	Outcome explorer.Outcome
	Capex   Breakdown
}

// Attach prices every outcome.
func (p Params) Attach(points []explorer.Outcome, peakDemandMW float64) ([]Point, error) {
	out := make([]Point, len(points))
	for i, o := range points {
		bd, err := p.DesignCapex(o.Design, peakDemandMW)
		if err != nil {
			return nil, err
		}
		out[i] = Point{Outcome: o, Capex: bd}
	}
	return out, nil
}

// ParetoCostCarbon extracts points not dominated in (capex, total carbon):
// no other point is both cheaper and lower-carbon. Sorted by increasing
// capex.
func ParetoCostCarbon(points []Point) []Point {
	sorted := make([]Point, len(points))
	copy(sorted, points)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Capex.Total() != sorted[j].Capex.Total() { //carbonlint:allow floatcmp exact-bits sort key keeps the frontier order deterministic
			return sorted[i].Capex.Total() < sorted[j].Capex.Total()
		}
		return sorted[i].Outcome.Total() < sorted[j].Outcome.Total()
	})
	var frontier []Point
	best := math.Inf(1)
	for _, pt := range sorted {
		if float64(pt.Outcome.Total()) < best {
			frontier = append(frontier, pt)
			best = float64(pt.Outcome.Total())
		}
	}
	return frontier
}

// CheapestAtCoverage returns the lowest-capex point achieving at least the
// given coverage, and whether any point qualifies.
func CheapestAtCoverage(points []Point, coveragePct float64) (Point, bool) {
	var best Point
	found := false
	for _, pt := range points {
		if pt.Outcome.CoveragePct < coveragePct {
			continue
		}
		if !found || pt.Capex.Total() < best.Capex.Total() {
			best = pt
			found = true
		}
	}
	return best, found
}
