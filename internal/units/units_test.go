package units

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9*(1+math.Abs(a)+math.Abs(b)) }

func TestEnergyFromPower(t *testing.T) {
	if got := MegaWatts(10).Energy(2); got != 20 {
		t.Fatalf("10 MW for 2h = %v MWh, want 20", got)
	}
	if got := MegaWatts(0).Energy(100); got != 0 {
		t.Fatalf("0 MW for 100h = %v MWh, want 0", got)
	}
}

func TestKWhConversion(t *testing.T) {
	if got := MegaWattHours(1.5).KWh(); got != 1500 {
		t.Fatalf("1.5 MWh = %v kWh, want 1500", got)
	}
}

func TestCarbonFromEnergy(t *testing.T) {
	// 1 MWh at 490 g/kWh (natural gas) = 490 kg.
	got := MegaWattHours(1).Carbon(490)
	if !almost(got.Kg(), 490) {
		t.Fatalf("1 MWh at 490 g/kWh = %v kg, want 490", got.Kg())
	}
}

func TestMassConversions(t *testing.T) {
	g := FromTonnesCO2(2.5)
	if !almost(g.Tonnes(), 2.5) {
		t.Fatalf("round trip tonnes: %v", g.Tonnes())
	}
	if !almost(g.Kg(), 2500) {
		t.Fatalf("2.5 t = %v kg, want 2500", g.Kg())
	}
	if !almost(FromKgCO2(1000).Tonnes(), 1) {
		t.Fatalf("1000 kg should be 1 t")
	}
	if !almost(FromTonnesCO2(5000).Kilotonnes(), 5) {
		t.Fatalf("5000 t should be 5 kt")
	}
}

func TestHoursPerYearConsistency(t *testing.T) {
	if HoursPerYear != DaysPerYear*HoursPerDay {
		t.Fatalf("hour/day constants inconsistent")
	}
	if DaysPerYear != 365 {
		t.Fatalf("DaysPerYear = %d, want 365", DaysPerYear)
	}
}

func TestPowerString(t *testing.T) {
	cases := []struct {
		p    MegaWatts
		want string
	}{
		{1500, "1.50 GW"},
		{73, "73.00 MW"},
		{0.5, "500.0 kW"},
		{0, "0.00 MW"},
	}
	for _, c := range cases {
		if got := c.p.String(); got != c.want {
			t.Errorf("%v.String() = %q, want %q", float64(c.p), got, c.want)
		}
	}
}

func TestEnergyString(t *testing.T) {
	if got := MegaWattHours(1200).String(); got != "1.20 GWh" {
		t.Errorf("got %q", got)
	}
	if got := MegaWattHours(40).String(); got != "40.00 MWh" {
		t.Errorf("got %q", got)
	}
}

func TestCarbonString(t *testing.T) {
	if got := FromTonnesCO2(2_000_000).String(); !strings.Contains(got, "ktCO2") {
		t.Errorf("large mass should render kilotonnes, got %q", got)
	}
	if got := GramsCO2(500).String(); !strings.Contains(got, "gCO2") {
		t.Errorf("small mass should render grams, got %q", got)
	}
	if got := CarbonIntensity(11).String(); got != "11.0 gCO2/kWh" {
		t.Errorf("got %q", got)
	}
}

func TestPropertyEnergyCarbonLinear(t *testing.T) {
	// Carbon(e, ci) is bilinear in e and ci for non-negative inputs.
	f := func(e, ci float64) bool {
		e = math.Abs(e)
		ci = math.Abs(ci)
		if math.IsInf(e, 0) || math.IsNaN(e) || math.IsInf(ci, 0) || math.IsNaN(ci) || e > 1e12 || ci > 1e6 {
			return true
		}
		double := MegaWattHours(2 * e).Carbon(CarbonIntensity(ci))
		single := MegaWattHours(e).Carbon(CarbonIntensity(ci))
		return almost(float64(double), 2*float64(single))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
