package units

import "fmt"

// MegaWatts is instantaneous power in MW.
type MegaWatts float64

// MegaWattHours is energy in MWh.
type MegaWattHours float64

// GramsCO2 is a carbon mass in grams of CO2-equivalent.
type GramsCO2 float64

// CarbonIntensity is grams of CO2-equivalent emitted per kWh of energy.
type CarbonIntensity float64

// Common derived conversions.
const (
	// KWhPerMWh converts megawatt-hours to kilowatt-hours.
	KWhPerMWh = 1000.0
	// GramsPerKg converts kilograms to grams.
	GramsPerKg = 1000.0
	// GramsPerTonne converts metric tonnes to grams.
	GramsPerTonne = 1e6
	// HoursPerYear is the length of the non-leap simulation year.
	HoursPerYear = 8760
	// HoursPerDay is the number of hours in a day.
	HoursPerDay = 24
	// DaysPerYear is the number of days in the simulation year.
	DaysPerYear = HoursPerYear / HoursPerDay
)

// Energy returns the energy produced by holding power p for the given number
// of hours.
func (p MegaWatts) Energy(hours float64) MegaWattHours {
	return MegaWattHours(float64(p) * hours)
}

// KWh returns the energy expressed in kilowatt-hours.
func (e MegaWattHours) KWh() float64 { return float64(e) * KWhPerMWh }

// Carbon returns the carbon emitted when energy e is supplied at intensity ci.
func (e MegaWattHours) Carbon(ci CarbonIntensity) GramsCO2 {
	return GramsCO2(e.KWh() * float64(ci))
}

// Kg returns the mass in kilograms.
func (g GramsCO2) Kg() float64 { return float64(g) / GramsPerKg }

// Tonnes returns the mass in metric tonnes.
func (g GramsCO2) Tonnes() float64 { return float64(g) / GramsPerTonne }

// Kilotonnes returns the mass in thousands of metric tonnes, the unit the
// paper uses for datacenter-scale annual footprints.
func (g GramsCO2) Kilotonnes() float64 { return float64(g) / (GramsPerTonne * 1000) }

// FromKgCO2 builds a carbon mass from kilograms.
func FromKgCO2(kg float64) GramsCO2 { return GramsCO2(kg * GramsPerKg) }

// FromTonnesCO2 builds a carbon mass from metric tonnes.
func FromTonnesCO2(t float64) GramsCO2 { return GramsCO2(t * GramsPerTonne) }

// String renders the power with an adaptive unit.
func (p MegaWatts) String() string {
	switch {
	case p >= 1000:
		return fmt.Sprintf("%.2f GW", float64(p)/1000)
	case p < 1 && p > 0:
		return fmt.Sprintf("%.1f kW", float64(p)*1000)
	default:
		return fmt.Sprintf("%.2f MW", float64(p))
	}
}

// String renders the energy with an adaptive unit.
func (e MegaWattHours) String() string {
	switch {
	case e >= 1000:
		return fmt.Sprintf("%.2f GWh", float64(e)/1000)
	case e < 1 && e > 0:
		return fmt.Sprintf("%.1f kWh", float64(e)*1000)
	default:
		return fmt.Sprintf("%.2f MWh", float64(e))
	}
}

// String renders the carbon mass with an adaptive unit.
func (g GramsCO2) String() string {
	switch {
	case g >= GramsPerTonne*1000:
		return fmt.Sprintf("%.2f ktCO2", g.Kilotonnes())
	case g >= GramsPerTonne:
		return fmt.Sprintf("%.2f tCO2", g.Tonnes())
	case g >= GramsPerKg:
		return fmt.Sprintf("%.2f kgCO2", g.Kg())
	default:
		return fmt.Sprintf("%.1f gCO2", float64(g))
	}
}

// String renders the intensity.
func (ci CarbonIntensity) String() string {
	return fmt.Sprintf("%.1f gCO2/kWh", float64(ci))
}
