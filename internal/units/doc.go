// Package units defines typed physical quantities used throughout Carbon
// Explorer: power (megawatts), energy (megawatt-hours), carbon mass
// (grams/kilograms/tonnes of CO2-equivalent), and carbon intensity
// (gCO2eq per kWh, the unit of the paper's Table 2).
//
// The types are thin wrappers over float64. They exist to make unit errors
// visible in signatures (a function that takes units.MegaWattHours cannot be
// handed a raw power number) while compiling down to plain float math.
package units
