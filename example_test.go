package carbonexplorer_test

import (
	"context"
	"fmt"
	"log"
	"math"

	"carbonexplorer"
)

// ExampleCoverage computes the paper's 24/7 renewable-coverage metric for a
// toy demand/supply pair.
func ExampleCoverage() {
	// Four hours of 10 MW demand against varying renewable supply.
	demand := carbonexplorer.SeriesOf(10, 10, 10, 10)
	renewable := carbonexplorer.SeriesOf(10, 5, 20, 0)
	cov, err := carbonexplorer.Coverage(demand, renewable)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%.1f%%\n", cov)
	// Output: 62.5%
}

// ExampleMustSite looks up a Table 1 site.
func ExampleMustSite() {
	site := carbonexplorer.MustSite("TX")
	fmt.Printf("%s on %s: %0.f MW wind + %0.f MW solar invested\n",
		site.Name, site.BA, site.WindInvestMW, site.SolarInvestMW)
	// Output: Fort Worth, Texas on ERCO: 404 MW wind + 300 MW solar invested
}

// ExampleNewBattery runs the C/L/C storage model directly.
func ExampleNewBattery() {
	bat, err := carbonexplorer.NewBattery(carbonexplorer.LFPBattery(10, 0.8))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("usable %.0f MWh of %.0f MWh at 80%% DoD\n", bat.UsableCapacity(), bat.Capacity())
	delivered := bat.Discharge(100, 1) // ask for far more than it can give
	fmt.Printf("delivered %.1f MW for one hour\n", delivered)
	// Output:
	// usable 8 MWh of 10 MWh at 80% DoD
	// delivered 7.8 MW for one hour
}

// ExampleRunSweep streams a small design grid through the resumable sweep
// engine. Setting SweepOptions.Checkpoint.Path would additionally persist
// progress so an interrupted sweep can continue with Checkpoint.Resume.
func ExampleRunSweep() {
	site := carbonexplorer.MustSite("UT")
	n := 240 // ten synthetic days
	demand := carbonexplorer.ConstantSeries(n, 12)
	wind := carbonexplorer.GenerateSeries(n, func(h int) float64 {
		return 0.5 + 0.4*math.Sin(2*math.Pi*float64(h)/31)
	})
	solar := carbonexplorer.GenerateSeries(n, func(h int) float64 {
		if h%24 >= 7 && h%24 < 17 {
			return 0.9
		}
		return 0
	})
	ci := carbonexplorer.ConstantSeries(n, 400)
	in, err := carbonexplorer.NewInputsFromSeries(site, demand, wind, solar, ci,
		carbonexplorer.DefaultEmbodiedParams())
	if err != nil {
		log.Fatal(err)
	}
	space := carbonexplorer.Space{
		WindMW:  []float64{0, 20, 40, 60},
		SolarMW: []float64{0, 20, 40, 60},
	}
	res, err := carbonexplorer.RunSweep(context.Background(), in, space,
		carbonexplorer.RenewablesOnly, carbonexplorer.SweepOptions{BatchSize: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("evaluated %d designs, %d on the Pareto frontier\n",
		res.Report.Evaluated, len(res.Frontier))
	fmt.Printf("optimum: %.0f MW wind + %.0f MW solar\n",
		res.Optimal.Design.WindMW, res.Optimal.Design.SolarMW)
	// Output:
	// evaluated 16 designs, 5 on the Pareto frontier
	// optimum: 60 MW wind + 0 MW solar
}

// ExampleCoordinateSweep runs the same sweep through the work-stealing
// coordinator: the grid is split into many small leases that a pool of
// workers claims dynamically. The result is byte-identical to RunSweep;
// only the (nondeterministic) split of work across workers differs, so the
// example prints aggregate progress.
func ExampleCoordinateSweep() {
	site := carbonexplorer.MustSite("UT")
	n := 240
	demand := carbonexplorer.ConstantSeries(n, 12)
	wind := carbonexplorer.GenerateSeries(n, func(h int) float64 {
		return 0.5 + 0.4*math.Sin(2*math.Pi*float64(h)/31)
	})
	solar := carbonexplorer.GenerateSeries(n, func(h int) float64 {
		if h%24 >= 7 && h%24 < 17 {
			return 0.9
		}
		return 0
	})
	ci := carbonexplorer.ConstantSeries(n, 400)
	in, err := carbonexplorer.NewInputsFromSeries(site, demand, wind, solar, ci,
		carbonexplorer.DefaultEmbodiedParams())
	if err != nil {
		log.Fatal(err)
	}
	space := carbonexplorer.Space{
		WindMW:  []float64{0, 20, 40, 60},
		SolarMW: []float64{0, 20, 40, 60},
	}
	res, err := carbonexplorer.CoordinateSweep(context.Background(), in, space,
		carbonexplorer.RenewablesOnly, carbonexplorer.CoordinatorOptions{Workers: 2, Leases: 8})
	if err != nil {
		log.Fatal(err)
	}
	leases := 0
	for _, w := range res.Workers {
		leases += w.Leases
	}
	fmt.Printf("%d workers drained %d leases, evaluated %d designs\n",
		len(res.Workers), leases, res.Report.Evaluated)
	fmt.Printf("optimum: %.0f MW wind + %.0f MW solar\n",
		res.Optimal.Design.WindMW, res.Optimal.Design.SolarMW)
	// Output:
	// 2 workers drained 8 leases, evaluated 16 designs
	// optimum: 60 MW wind + 0 MW solar
}

// ExampleNetZeroSummarize shows the Net Zero vs 24/7 accounting gap on a
// solar-only toy: credits equal consumption annually, but nights are
// uncovered.
func ExampleNetZeroSummarize() {
	n := 48
	demand := carbonexplorer.ConstantSeries(n, 10)
	credits := carbonexplorer.GenerateSeries(n, func(h int) float64 {
		if h%24 >= 6 && h%24 < 18 {
			return 20 // all generation during daytime
		}
		return 0
	})
	s, err := carbonexplorer.NetZeroSummarize(demand, credits)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("annual net zero: %v, hourly matched: %.0f%%\n",
		s.AnnualNetZero, s.ByPeriod[carbonexplorer.MatchHourly]*100)
	// Output: annual net zero: true, hourly matched: 50%
}
