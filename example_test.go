package carbonexplorer_test

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"

	"carbonexplorer"
)

// ExampleCoverage computes the paper's 24/7 renewable-coverage metric for a
// toy demand/supply pair.
func ExampleCoverage() {
	// Four hours of 10 MW demand against varying renewable supply.
	demand := carbonexplorer.SeriesOf(10, 10, 10, 10)
	renewable := carbonexplorer.SeriesOf(10, 5, 20, 0)
	cov, err := carbonexplorer.Coverage(demand, renewable)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%.1f%%\n", cov)
	// Output: 62.5%
}

// ExampleMustSite looks up a Table 1 site.
func ExampleMustSite() {
	site := carbonexplorer.MustSite("TX")
	fmt.Printf("%s on %s: %0.f MW wind + %0.f MW solar invested\n",
		site.Name, site.BA, site.WindInvestMW, site.SolarInvestMW)
	// Output: Fort Worth, Texas on ERCO: 404 MW wind + 300 MW solar invested
}

// ExampleNewBattery runs the C/L/C storage model directly.
func ExampleNewBattery() {
	bat, err := carbonexplorer.NewBattery(carbonexplorer.LFPBattery(10, 0.8))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("usable %.0f MWh of %.0f MWh at 80%% DoD\n", bat.UsableCapacity(), bat.Capacity())
	delivered := bat.Discharge(100, 1) // ask for far more than it can give
	fmt.Printf("delivered %.1f MW for one hour\n", delivered)
	// Output:
	// usable 8 MWh of 10 MWh at 80% DoD
	// delivered 7.8 MW for one hour
}

// ExampleRunSweep streams a small design grid through the resumable sweep
// engine. Setting SweepOptions.Checkpoint.Path would additionally persist
// progress so an interrupted sweep can continue with Checkpoint.Resume.
func ExampleRunSweep() {
	site := carbonexplorer.MustSite("UT")
	n := 240 // ten synthetic days
	demand := carbonexplorer.ConstantSeries(n, 12)
	wind := carbonexplorer.GenerateSeries(n, func(h int) float64 {
		return 0.5 + 0.4*math.Sin(2*math.Pi*float64(h)/31)
	})
	solar := carbonexplorer.GenerateSeries(n, func(h int) float64 {
		if h%24 >= 7 && h%24 < 17 {
			return 0.9
		}
		return 0
	})
	ci := carbonexplorer.ConstantSeries(n, 400)
	in, err := carbonexplorer.NewInputsFromSeries(site, demand, wind, solar, ci,
		carbonexplorer.DefaultEmbodiedParams())
	if err != nil {
		log.Fatal(err)
	}
	space := carbonexplorer.Space{
		WindMW:  []float64{0, 20, 40, 60},
		SolarMW: []float64{0, 20, 40, 60},
	}
	res, err := carbonexplorer.RunSweep(context.Background(), in, space,
		carbonexplorer.RenewablesOnly, carbonexplorer.SweepOptions{BatchSize: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("evaluated %d designs, %d on the Pareto frontier\n",
		res.Report.Evaluated, len(res.Frontier))
	fmt.Printf("optimum: %.0f MW wind + %.0f MW solar\n",
		res.Optimal.Design.WindMW, res.Optimal.Design.SolarMW)
	// Output:
	// evaluated 16 designs, 5 on the Pareto frontier
	// optimum: 60 MW wind + 0 MW solar
}

// ExampleCoordinateSweep runs the same sweep through the work-stealing
// coordinator: the grid is split into many small leases that a pool of
// workers claims dynamically. The result is byte-identical to RunSweep;
// only the (nondeterministic) split of work across workers differs, so the
// example prints aggregate progress.
func ExampleCoordinateSweep() {
	site := carbonexplorer.MustSite("UT")
	n := 240
	demand := carbonexplorer.ConstantSeries(n, 12)
	wind := carbonexplorer.GenerateSeries(n, func(h int) float64 {
		return 0.5 + 0.4*math.Sin(2*math.Pi*float64(h)/31)
	})
	solar := carbonexplorer.GenerateSeries(n, func(h int) float64 {
		if h%24 >= 7 && h%24 < 17 {
			return 0.9
		}
		return 0
	})
	ci := carbonexplorer.ConstantSeries(n, 400)
	in, err := carbonexplorer.NewInputsFromSeries(site, demand, wind, solar, ci,
		carbonexplorer.DefaultEmbodiedParams())
	if err != nil {
		log.Fatal(err)
	}
	space := carbonexplorer.Space{
		WindMW:  []float64{0, 20, 40, 60},
		SolarMW: []float64{0, 20, 40, 60},
	}
	res, err := carbonexplorer.CoordinateSweep(context.Background(), in, space,
		carbonexplorer.RenewablesOnly, carbonexplorer.CoordinatorOptions{Workers: 2, Leases: 8})
	if err != nil {
		log.Fatal(err)
	}
	leases := 0
	for _, w := range res.Workers {
		leases += w.Leases
	}
	fmt.Printf("%d workers drained %d leases, evaluated %d designs\n",
		len(res.Workers), leases, res.Report.Evaluated)
	fmt.Printf("optimum: %.0f MW wind + %.0f MW solar\n",
		res.Optimal.Design.WindMW, res.Optimal.Design.SolarMW)
	// Output:
	// 2 workers drained 8 leases, evaluated 16 designs
	// optimum: 60 MW wind + 0 MW solar
}

// ExampleLoadServeIndex walks the full precompute-then-serve path: a sweep
// persists its checkpoint, LoadServeIndex freezes the checkpoint into an
// immutable query index, and both the Go API and the HTTP API answer
// optimum-under-constraints queries from it — without re-evaluating a
// single design. See docs/SERVING.md for the HTTP API reference.
func ExampleLoadServeIndex() {
	site := carbonexplorer.MustSite("UT")
	n := 240 // ten synthetic days
	demand := carbonexplorer.ConstantSeries(n, 12)
	wind := carbonexplorer.GenerateSeries(n, func(h int) float64 {
		return 0.5 + 0.4*math.Sin(2*math.Pi*float64(h)/31)
	})
	solar := carbonexplorer.GenerateSeries(n, func(h int) float64 {
		if h%24 >= 7 && h%24 < 17 {
			return 0.9
		}
		return 0
	})
	ci := carbonexplorer.ConstantSeries(n, 400)
	in, err := carbonexplorer.NewInputsFromSeries(site, demand, wind, solar, ci,
		carbonexplorer.DefaultEmbodiedParams())
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "serve-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Precompute: sweep the grid and persist the checkpoint.
	ckpt := filepath.Join(dir, "sweep.json")
	space := carbonexplorer.Space{
		WindMW:  []float64{0, 20, 40, 60},
		SolarMW: []float64{0, 20, 40, 60},
	}
	_, err = carbonexplorer.RunSweep(context.Background(), in, space,
		carbonexplorer.RenewablesOnly, carbonexplorer.SweepOptions{
			Checkpoint: carbonexplorer.SweepCheckpointOptions{Path: ckpt},
		})
	if err != nil {
		log.Fatal(err)
	}

	// Serve: load the checkpoint into an immutable index. The Inputs hook
	// reuses the in-memory inputs so the example stays deterministic; the
	// default (nil) resolves sites through the shared experiments cache.
	ix, err := carbonexplorer.LoadServeIndex([]string{ckpt}, carbonexplorer.ServeOptions{
		Inputs: func(string) (*carbonexplorer.Inputs, error) { return in, nil },
	})
	if err != nil {
		log.Fatal(err)
	}
	snap := ix.Snapshots()[0]
	fmt.Printf("serving site %s: %d designs swept, %d on the frontier\n",
		snap.Site, snap.Designs, len(snap.Frontier()))

	// Query in-process: the carbon optimum under a capital budget.
	p, err := snap.Optimum(carbonexplorer.ServeQuery{
		MaxCostUSD:     30e6,
		MinCoveragePct: carbonexplorer.ServeUnconstrained,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimum under $30M: %.0f MW wind + %.0f MW solar ($%.1fM)\n",
		p.Outcome.Design.WindMW, p.Outcome.Design.SolarMW, p.CostUSD/1e6)

	// Query over HTTP: the same answer from the serve API.
	srv := httptest.NewServer(carbonexplorer.ServeHandler(ix))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v1/sweeps/" + snap.SpaceHash + "/optimum?max_cost_usd=30e6")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var got struct {
		Optimum struct {
			Design  carbonexplorer.Design `json:"design"`
			CostUSD float64               `json:"cost_usd"`
		} `json:"optimum"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("HTTP %d: %.0f MW wind + %.0f MW solar ($%.1fM)\n",
		resp.StatusCode, got.Optimum.Design.WindMW, got.Optimum.Design.SolarMW, got.Optimum.CostUSD/1e6)
	// Output:
	// serving site UT: 16 designs swept, 5 on the frontier
	// optimum under $30M: 20 MW wind + 0 MW solar ($27.0M)
	// HTTP 200: 20 MW wind + 0 MW solar ($27.0M)
}

// ExampleNetZeroSummarize shows the Net Zero vs 24/7 accounting gap on a
// solar-only toy: credits equal consumption annually, but nights are
// uncovered.
func ExampleNetZeroSummarize() {
	n := 48
	demand := carbonexplorer.ConstantSeries(n, 10)
	credits := carbonexplorer.GenerateSeries(n, func(h int) float64 {
		if h%24 >= 6 && h%24 < 18 {
			return 20 // all generation during daytime
		}
		return 0
	})
	s, err := carbonexplorer.NetZeroSummarize(demand, credits)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("annual net zero: %v, hourly matched: %.0f%%\n",
		s.AnnualNetZero, s.ByPeriod[carbonexplorer.MatchHourly]*100)
	// Output: annual net zero: true, hourly matched: 50%
}

// ExampleSweepPlan runs the same search as an adaptive sweep: instead of
// walking the dense grid, a coarse lattice is evaluated, cells that cannot
// reach the Pareto frontier within the tolerance are pruned, and the
// survivors are subdivided — reaching the dense-grid frontier at a fraction
// of the evaluations. The plan, not a pile of loose knobs, is the single
// description of what the sweep covers; it composes unchanged with
// checkpoints, shards, and coordinated fleets.
func ExampleSweepPlan() {
	site := carbonexplorer.MustSite("UT")
	n := 240
	demand := carbonexplorer.ConstantSeries(n, 12)
	wind := carbonexplorer.GenerateSeries(n, func(h int) float64 {
		return 0.5 + 0.4*math.Sin(2*math.Pi*float64(h)/31)
	})
	solar := carbonexplorer.GenerateSeries(n, func(h int) float64 {
		if h%24 >= 7 && h%24 < 17 {
			return 0.9
		}
		return 0
	})
	ci := carbonexplorer.ConstantSeries(n, 400)
	in, err := carbonexplorer.NewInputsFromSeries(site, demand, wind, solar, ci,
		carbonexplorer.DefaultEmbodiedParams())
	if err != nil {
		log.Fatal(err)
	}
	space := carbonexplorer.Space{
		WindMW:       []float64{0, 30, 60},
		SolarMW:      []float64{0, 30, 60},
		BatteryHours: []float64{0, 2, 4},
		DoD:          1,
	}
	res, err := carbonexplorer.RunAdaptiveSweep(context.Background(), in, space,
		carbonexplorer.RenewablesBattery,
		carbonexplorer.SweepPlan{Tolerance: 0.05, MaxRounds: 2, CoarsePointsPerDim: 3},
		carbonexplorer.SweepOptions{})
	if err != nil {
		log.Fatal(err)
	}
	// Two subdivision rounds refine the 3-point coarse lattice to the
	// resolution of a dense 9×9×9 grid (729 designs).
	fmt.Printf("adaptive: %d designs over %d rounds (dense grid: %d), converged: %v\n",
		res.Report.Evaluated, res.Adaptive.Round+1, 9*9*9, res.Adaptive.Converged)
	fmt.Printf("optimum: %.0f MW wind + %.0f MW solar + %.0f MWh battery\n",
		res.Optimal.Design.WindMW, res.Optimal.Design.SolarMW, res.Optimal.Design.BatteryMWh)
	// Output:
	// adaptive: 251 designs over 3 rounds (dense grid: 729), converged: true
	// optimum: 60 MW wind + 0 MW solar + 0 MWh battery
}
