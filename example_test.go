package carbonexplorer_test

import (
	"fmt"
	"log"

	"carbonexplorer"
)

// ExampleCoverage computes the paper's 24/7 renewable-coverage metric for a
// toy demand/supply pair.
func ExampleCoverage() {
	// Four hours of 10 MW demand against varying renewable supply.
	demand := carbonexplorer.SeriesOf(10, 10, 10, 10)
	renewable := carbonexplorer.SeriesOf(10, 5, 20, 0)
	cov, err := carbonexplorer.Coverage(demand, renewable)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%.1f%%\n", cov)
	// Output: 62.5%
}

// ExampleMustSite looks up a Table 1 site.
func ExampleMustSite() {
	site := carbonexplorer.MustSite("TX")
	fmt.Printf("%s on %s: %0.f MW wind + %0.f MW solar invested\n",
		site.Name, site.BA, site.WindInvestMW, site.SolarInvestMW)
	// Output: Fort Worth, Texas on ERCO: 404 MW wind + 300 MW solar invested
}

// ExampleNewBattery runs the C/L/C storage model directly.
func ExampleNewBattery() {
	bat, err := carbonexplorer.NewBattery(carbonexplorer.LFPBattery(10, 0.8))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("usable %.0f MWh of %.0f MWh at 80%% DoD\n", bat.UsableCapacity(), bat.Capacity())
	delivered := bat.Discharge(100, 1) // ask for far more than it can give
	fmt.Printf("delivered %.1f MW for one hour\n", delivered)
	// Output:
	// usable 8 MWh of 10 MWh at 80% DoD
	// delivered 7.8 MW for one hour
}

// ExampleNetZeroSummarize shows the Net Zero vs 24/7 accounting gap on a
// solar-only toy: credits equal consumption annually, but nights are
// uncovered.
func ExampleNetZeroSummarize() {
	n := 48
	demand := carbonexplorer.ConstantSeries(n, 10)
	credits := carbonexplorer.GenerateSeries(n, func(h int) float64 {
		if h%24 >= 6 && h%24 < 18 {
			return 20 // all generation during daytime
		}
		return 0
	})
	s, err := carbonexplorer.NetZeroSummarize(demand, credits)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("annual net zero: %v, hourly matched: %.0f%%\n",
		s.AnnualNetZero, s.ByPeriod[carbonexplorer.MatchHourly]*100)
	// Output: annual net zero: true, hourly matched: 50%
}
