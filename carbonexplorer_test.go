package carbonexplorer

import (
	"testing"
)

func TestFacadeSites(t *testing.T) {
	if len(Sites()) != 13 {
		t.Fatalf("want 13 sites")
	}
	if len(BalancingAuthorities()) != 10 {
		t.Fatalf("want 10 balancing authorities")
	}
	s, err := SiteByID("OR")
	if err != nil || s.BA != "BPAT" {
		t.Fatalf("OR lookup failed: %v %+v", err, s)
	}
	if MustSite("TX").BA != "ERCO" {
		t.Fatalf("TX site wrong")
	}
}

func TestFacadeEndToEnd(t *testing.T) {
	site := MustSite("UT")
	in, err := NewInputs(site)
	if err != nil {
		t.Fatal(err)
	}
	out, err := in.Evaluate(Design{
		WindMW:     site.WindInvestMW,
		SolarMW:    site.SolarInvestMW,
		BatteryMWh: 2 * in.AvgDemandMW(),
		DoD:        1.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.CoveragePct <= 0 || out.Total() <= 0 {
		t.Fatalf("implausible outcome: %+v", out)
	}
}

func TestFacadeSearchAndPareto(t *testing.T) {
	in, err := NewInputs(MustSite("NM"))
	if err != nil {
		t.Fatal(err)
	}
	avg := in.AvgDemandMW()
	space := Space{
		WindMW:             []float64{0, 2 * avg},
		SolarMW:            []float64{0, 2 * avg},
		BatteryHours:       []float64{0, 4},
		ExtraCapacityFracs: []float64{0},
		DoD:                1.0,
		FlexibleRatio:      0.4,
	}
	res, err := in.Search(space, RenewablesBattery)
	if err != nil {
		t.Fatal(err)
	}
	front := ParetoFrontier(res.Points)
	if len(front) == 0 {
		t.Fatal("empty frontier")
	}
	if len(AllStrategies()) != 4 {
		t.Fatal("want 4 strategies")
	}
}

func TestFacadeBatteryAndScheduler(t *testing.T) {
	bat, err := NewBattery(LFPBattery(10, 0.8))
	if err != nil {
		t.Fatal(err)
	}
	if bat.UsableCapacity() != 8 {
		t.Fatalf("usable = %v", bat.UsableCapacity())
	}
	y, err := GenerateGridYear("ERCO")
	if err != nil {
		t.Fatal(err)
	}
	if y.Hours() != 8760 {
		t.Fatalf("grid year hours = %d", y.Hours())
	}
	if _, err := GenerateGridYear("NOPE"); err == nil {
		t.Fatal("unknown BA should error")
	}
}

func TestFacadeEnsemble(t *testing.T) {
	res, err := EnsembleEvaluate(MustSite("IA"), Design{WindMW: 100}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != 3 || res.CoverageP50 <= 0 {
		t.Fatalf("ensemble wrong: %+v", res)
	}
}

func TestFacadeCoverageAndShift(t *testing.T) {
	in, err := NewInputs(MustSite("IA"))
	if err != nil {
		t.Fatal(err)
	}
	sup := in.RenewableSupply(100, 0)
	cov, err := Coverage(in.Demand, sup)
	if err != nil {
		t.Fatal(err)
	}
	if cov < 0 || cov > 100 {
		t.Fatalf("coverage = %v", cov)
	}
	shifted, err := ShiftDaily(in.Demand, in.GridCI, SchedulerConfig{FlexibleRatio: 0.2, WindowHours: 24})
	if err != nil {
		t.Fatal(err)
	}
	if diff := shifted.Sum() - in.Demand.Sum(); diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("shift broke energy conservation")
	}
	if DefaultSpace(in).DoD != 1.0 {
		t.Fatalf("default space DoD wrong")
	}
	if DefaultEmbodiedParams().ServerKg != 744.5 {
		t.Fatalf("embodied defaults wrong")
	}
	if DefaultDemandParams(40).AvgPowerMW != 40 {
		t.Fatalf("demand defaults wrong")
	}
}
