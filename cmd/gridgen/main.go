// Command gridgen emits one synthetic hourly grid year for a balancing
// authority in the EIA-style CSV schema, so the data Carbon Explorer runs on
// can be inspected, plotted, or replaced with converted real exports.
//
// Usage:
//
//	gridgen -ba BPAT -out bpat_2020.csv
//	gridgen -ba PACE            # writes to stdout
//	gridgen -list               # list balancing authorities
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"carbonexplorer/internal/eiacsv"
	"carbonexplorer/internal/grid"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gridgen:", err)
		os.Exit(1)
	}
}

func run() error {
	ba := flag.String("ba", "", "balancing authority code (see -list)")
	out := flag.String("out", "", "output file (default stdout)")
	list := flag.Bool("list", false, "list balancing authorities and exit")
	scale := flag.Float64("renewable-scale", 1.0, "multiplier on the BA's wind+solar capacity")
	flag.Parse()

	if *list {
		for _, code := range grid.Codes() {
			p := grid.MustProfile(code)
			fmt.Printf("%-5s %-45s %s\n", code, p.Name, p.Class)
		}
		return nil
	}
	if *ba == "" {
		return fmt.Errorf("missing -ba (use -list to see options)")
	}
	profile, err := grid.Profile(*ba)
	if err != nil {
		return err
	}
	if *scale < 0 {
		return fmt.Errorf("renewable scale must be non-negative")
	}
	year := grid.GenerateYearScaled(profile, *scale)

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := eiacsv.Write(w, year); err != nil {
		return err
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "wrote %d hours for %s to %s (renewable share %.1f%%, curtailed %.2f%%)\n",
			year.Hours(), *ba, *out, year.RenewableShare()*100, year.CurtailedFraction()*100)
	}
	return nil
}
