package main

// Documentation drift test: the analyzer table in docs/LINTING.md is held
// to the actual suite (what -list prints), in both directions, so adding an
// analyzer without documenting it — or renaming one and leaving the stale
// row — fails the build.

import (
	"os"
	"regexp"
	"testing"

	"carbonexplorer/internal/analyzers"
)

// lintingDoc is the rule-by-rule documentation this binary's -list output
// must stay in sync with, relative to this package's directory.
const lintingDoc = "../../docs/LINTING.md"

// tableRowRE matches the analyzer-name cell of a LINTING.md table row.
var tableRowRE = regexp.MustCompile("(?m)^\\| `([a-z]+)` \\|")

func TestDocListedAnalyzersMatchSuite(t *testing.T) {
	data, err := os.ReadFile(lintingDoc)
	if err != nil {
		t.Fatal(err)
	}
	documented := map[string]bool{}
	for _, m := range tableRowRE.FindAllStringSubmatch(string(data), -1) {
		documented[m[1]] = true
	}
	if len(documented) == 0 {
		t.Fatal("no analyzer table rows found in docs/LINTING.md; the extraction regex has drifted from the doc")
	}

	suite := map[string]bool{}
	for _, a := range analyzers.All() {
		suite[a.Name] = true
		if !documented[a.Name] {
			t.Errorf("analyzer %q is in the suite (-list) but has no table row in docs/LINTING.md", a.Name)
		}
	}
	for name := range documented {
		if !suite[name] {
			t.Errorf("docs/LINTING.md documents analyzer %q, which the suite does not contain", name)
		}
	}
}
