// Command carbonlint runs the project's static-analysis suite — the
// machine-enforced determinism, cancellation, hot-path allocation,
// lifecycle, and immutability invariants described in docs/LINTING.md —
// over the given packages.
//
// Usage:
//
//	go run ./cmd/carbonlint ./...                  # lint the whole module
//	go run ./cmd/carbonlint -list                  # describe the analyzers
//	go run ./cmd/carbonlint -format sarif ./...    # machine-readable output
//	go run ./cmd/carbonlint -baseline lint-baseline.json ./...
//	go run ./cmd/carbonlint -write-baseline lint-baseline.json ./...
//
// Packages load and lint in parallel (-jobs, default GOMAXPROCS); output is
// byte-identical at every jobs count. Findings print one per line as
// file:line:col: analyzer: message (or as JSON/SARIF with -format), and any
// finding not absorbed by the -baseline makes the command exit 1 — CI fails
// on a single new diagnostic. Intentional violations are suppressed in the
// source with
//
//	//carbonlint:allow <analyzer> <reason>
//
// on the offending line or the line above; the reason is mandatory and a
// directive that suppresses nothing is itself a finding, so suppressions
// cannot rot. Findings outside Go sources (benchdrift's JSON and markdown
// checks) take no comments — carry them in the baseline instead.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"carbonexplorer/internal/analyzers"
	"carbonexplorer/internal/analyzers/load"
)

func main() {
	list := flag.Bool("list", false, "describe the analyzers in the suite and exit")
	format := flag.String("format", "text", "output format: text, json, or sarif")
	baselinePath := flag.String("baseline", "", "baseline file of accepted findings; only findings not listed there are reported")
	writeBaseline := flag.String("write-baseline", "", "write current findings to this baseline file and exit 0")
	jobs := flag.Int("jobs", runtime.GOMAXPROCS(0), "packages to load and lint concurrently")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: carbonlint [-list] [-format text|json|sarif] [-baseline file] [-write-baseline file] [-jobs n] [packages]")
		flag.PrintDefaults()
	}
	flag.Parse()

	suite := analyzers.All()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	switch *format {
	case "text", "json", "sarif":
	default:
		fmt.Fprintf(os.Stderr, "carbonlint: unknown -format %q (want text, json, or sarif)\n", *format)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	// Paths in output and baselines are module-relative so they are stable
	// across checkouts; a missing module root only disables that trim.
	root, err := load.ModuleRoot()
	if err != nil {
		root = ""
	}
	pkgs, err := load.PatternsJobs("", *jobs, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "carbonlint:", err)
		os.Exit(2)
	}
	findings, err := analyzers.LintParallel(pkgs, suite, *jobs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "carbonlint:", err)
		os.Exit(2)
	}

	if *writeBaseline != "" {
		f, err := os.Create(*writeBaseline)
		if err == nil {
			err = analyzers.WriteBaseline(f, findings, root)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "carbonlint:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "carbonlint: wrote %d finding%s to %s\n", len(findings), plural(len(findings)), *writeBaseline)
		return
	}

	if *baselinePath != "" {
		b, err := analyzers.LoadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "carbonlint:", err)
			os.Exit(2)
		}
		findings = b.Filter(findings, root)
	}

	switch *format {
	case "text":
		err = analyzers.WriteText(os.Stdout, findings)
	case "json":
		err = analyzers.WriteJSON(os.Stdout, findings, root)
	case "sarif":
		err = analyzers.WriteSARIF(os.Stdout, findings, suite, root)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "carbonlint:", err)
		os.Exit(2)
	}
	if n := len(findings); n > 0 {
		fmt.Fprintf(os.Stderr, "carbonlint: %d finding%s\n", n, plural(n))
		os.Exit(1)
	}
}

// plural returns "s" for n != 1.
func plural(n int) string {
	if n == 1 {
		return ""
	}
	return "s"
}
