// Command carbonlint runs the project's static-analysis suite — the
// machine-enforced determinism, cancellation, and checkpoint invariants
// described in docs/LINTING.md — over the given packages.
//
// Usage:
//
//	go run ./cmd/carbonlint ./...        # lint the whole module
//	go run ./cmd/carbonlint -list        # describe the analyzers
//	go run ./cmd/carbonlint ./internal/sweep ./internal/explorer
//
// Findings print one per line as file:line:col: analyzer: message, and any
// finding makes the command exit 1 — CI fails on a single diagnostic.
// Intentional violations are suppressed in the source with
//
//	//carbonlint:allow <analyzer> <reason>
//
// on the offending line or the line above; the reason is mandatory and a
// directive that suppresses nothing is itself a finding, so suppressions
// cannot rot.
package main

import (
	"flag"
	"fmt"
	"os"

	"carbonexplorer/internal/analyzers"
	"carbonexplorer/internal/analyzers/load"
)

func main() {
	list := flag.Bool("list", false, "describe the analyzers in the suite and exit")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: carbonlint [-list] [packages]")
		flag.PrintDefaults()
	}
	flag.Parse()

	suite := analyzers.All()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := load.Patterns("", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "carbonlint:", err)
		os.Exit(2)
	}
	findings, err := analyzers.Lint(pkgs, suite)
	if err != nil {
		fmt.Fprintln(os.Stderr, "carbonlint:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if n := len(findings); n > 0 {
		fmt.Fprintf(os.Stderr, "carbonlint: %d finding%s\n", n, plural(n))
		os.Exit(1)
	}
}

// plural returns "s" for n != 1.
func plural(n int) string {
	if n == 1 {
		return ""
	}
	return "s"
}
