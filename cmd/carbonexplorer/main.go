// Command carbonexplorer is the Carbon Explorer CLI. It evaluates and
// optimizes carbon-aware datacenter designs for the paper's thirteen sites.
//
// Usage:
//
//	carbonexplorer sites
//	carbonexplorer coverage -site UT -wind 239 -solar 694
//	carbonexplorer evaluate -site UT -wind 239 -solar 694 -battery-hours 4 -flex 0.4 -extra-capacity 0.25
//	carbonexplorer optimize -site UT -strategy all
//	carbonexplorer optimize -site UT -strategy all -checkpoint sweep.json -resume
//	carbonexplorer optimize -site UT -strategy all -shard 1/3 -checkpoint shard1.json
//	carbonexplorer optimize -site UT -strategy all -mode adaptive -tolerance 0.02
//	carbonexplorer optimize -site UT -strategy all -workers 4
//	carbonexplorer optimize -site UT -strategy all -workers 4 -coordinate leases/
//	carbonexplorer coordinate -listen :8080 -state coordinator-state
//	carbonexplorer optimize -site UT -strategy all -workers 4 -coordinate http://host:8080
//	carbonexplorer merge -out merged.json shard1.json shard2.json shard3.json
//	carbonexplorer serve -listen :8090 merged.json
//	carbonexplorer serve -listen :8090 -state coordinator-state
//	carbonexplorer figure 8
//
// optimize runs as a streaming sweep (internal/sweep): memory is bounded by
// -batch regardless of grid density, failed designs are retried (-retries,
// default once), and with -checkpoint an interrupted sweep — Ctrl-C, a
// timeout, or a crash — persists its progress and continues with -resume.
//
// -mode adaptive replaces the exhaustive grid walk with iterative
// refinement: a coarse lattice (-coarse points per free axis) is evaluated,
// cells that provably cannot reach the Pareto frontier within -tolerance
// are pruned, and the survivors are subdivided for the next round, up to
// -max-rounds. The refinement is deterministic, so it composes with
// -checkpoint/-resume, -shard, -workers, and -coordinate exactly like an
// exhaustive sweep and converges to byte-identical checkpoints on any
// worker topology.
//
// -shard i/N restricts a run to its contiguous 1/N slice of the design
// enumeration, so N workers on separate machines can split one sweep with no
// coordination beyond agreeing on N. Each shard writes its own checkpoint;
// merge folds any set of them — complete or partial — into one checkpoint
// holding the combined optimum and Pareto frontier, which optimize -resume
// accepts to finish or re-split the remaining designs.
//
// -workers N replaces the static partition with a work-stealing coordinator
// (internal/coordinator): the space splits into many small leases (-leases)
// claimed dynamically, so a slow worker no longer gates the sweep. Adding
// -coordinate <dir> moves coordination into atomic lease files under <dir>:
// several independently started processes share one sweep, a killed
// worker's lease is stolen after its heartbeat expires and its checkpoint
// is resumed by the thief, and re-invoking the same command after a crash
// or Ctrl-C continues where the fleet left off. See docs/OPERATIONS.md for
// the operator's guide.
//
// When machines share no filesystem, `coordinate -listen :8080` serves the
// same lease protocol over HTTP from a local state directory, and
// -coordinate accepts the coordinator's URL (http://host:8080) instead of a
// directory — the mode is auto-detected from the prefix. The coordinator's
// state survives its own restarts; workers ride through a short outage via
// retries with backoff.
//
// serve is the read side of the system: it loads finished (or in-progress)
// checkpoints — per-shard, merged, or a coordinator's state directory via
// -state — into an immutable in-memory index and answers
// optimum-under-constraints, Pareto-frontier, comparison, and chart queries
// over HTTP at in-memory speed (internal/serve). See docs/SERVING.md for
// the API reference.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"carbonexplorer/internal/coordinator"
	"carbonexplorer/internal/experiments"
	"carbonexplorer/internal/explorer"
	"carbonexplorer/internal/grid"
	"carbonexplorer/internal/serve"
	"carbonexplorer/internal/sweep"
)

func main() {
	// Ctrl-C cancels the context instead of killing the process, so
	// long-running sweeps can print partial results before exiting.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "carbonexplorer:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	if len(args) == 0 {
		usage()
		return fmt.Errorf("missing subcommand")
	}
	switch args[0] {
	case "sites":
		return cmdSites()
	case "coverage":
		return cmdCoverage(args[1:])
	case "evaluate":
		return cmdEvaluate(args[1:])
	case "optimize":
		return cmdOptimize(ctx, args[1:])
	case "coordinate":
		return cmdCoordinate(ctx, args[1:])
	case "merge":
		return cmdMerge(args[1:])
	case "serve":
		return cmdServe(ctx, args[1:])
	case "figure":
		return cmdFigure(args[1:])
	case "study":
		return cmdStudy(args[1:])
	case "help", "-h", "--help":
		usage()
		return nil
	default:
		usage()
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

// flagRangeError builds a friendly parse-time error naming the offending
// flag, instead of letting an out-of-range value fail deep inside the
// evaluation with no flag context.
func flagRangeError(name string, v float64, want string) error {
	return fmt.Errorf("flag -%s: value %v out of range (want %s)", name, v, want)
}

// checkNonNegative validates a set of flags that must be finite and >= 0.
func checkNonNegative(flags map[string]float64) error {
	for name, v := range flags {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return flagRangeError(name, v, ">= 0")
		}
	}
	return nil
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: carbonexplorer <subcommand> [flags]

subcommands:
  sites        list the thirteen datacenter sites (Table 1)
  coverage     24/7 renewable coverage for a wind/solar investment
  evaluate     full carbon evaluation of one design
  optimize     streaming search for the carbon-optimal design
               (-checkpoint/-resume persist progress; -batch bounds memory;
               -shard i/N sweeps one slice of the space per worker;
               -mode adaptive refines a coarse lattice toward the frontier
               instead of walking the full grid — see -tolerance/-max-rounds/-coarse)
  coordinate   serve the lease coordinator over HTTP (-listen :8080) so
               optimize -coordinate http://host:8080 workers on any machine
               share one sweep; state survives coordinator restarts
  merge        fold shard checkpoints into one (-out merged.json shard1.json ...);
               the merged checkpoint resumes with optimize -resume
  serve        load checkpoints into an immutable in-memory index and answer
               optimum/frontier/compare/chart queries over HTTP
               (-listen :8090; -state <dir> serves a coordinator's merged
               checkpoint; see docs/SERVING.md)
  figure       regenerate a paper figure/table (1,3,4,5,6,7,8,9,10,11,12,14,15,16)
  study        run an analysis study: dod | cas-gains | total-reduction |
               netzero | forecast | battery-tech | tiered | geo | dispatch |
               jobsim | optimizer | cost | robustness | sensitivity |
               fwr | dr-signals | horizon | atlas | pue | ensemble | marginal | curtailment | ablation`)
}

func cmdSites() error {
	fmt.Print(experiments.Table01())
	return nil
}

func siteInputs(id string) (*explorer.Inputs, error) {
	site, err := grid.SiteByID(id)
	if err != nil {
		return nil, err
	}
	return explorer.NewInputs(site)
}

// Every subcommand declares its flags in a single <cmd>Flags constructor,
// shared between the run path and commandFlagSets — so the flag sets that
// tests (and the docs-drift check) enumerate are, by construction, exactly
// the flags the binary accepts.

func coverageFlags(fs *flag.FlagSet) (siteID *string, wind, solar *float64) {
	siteID = fs.String("site", "UT", "site ID (see 'sites')")
	wind = fs.Float64("wind", 0, "wind investment, MW")
	solar = fs.Float64("solar", 0, "solar investment, MW")
	return
}

func cmdCoverage(args []string) error {
	fs := flag.NewFlagSet("coverage", flag.ContinueOnError)
	siteID, wind, solar := coverageFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := checkNonNegative(map[string]float64{"wind": *wind, "solar": *solar}); err != nil {
		return err
	}
	in, err := siteInputs(*siteID)
	if err != nil {
		return err
	}
	cov, err := in.CoverageFor(*wind, *solar)
	if err != nil {
		return err
	}
	fmt.Printf("site %s: %.0f MW wind + %.0f MW solar -> %.2f%% 24/7 coverage\n",
		*siteID, *wind, *solar, cov)
	return nil
}

func evaluateFlags(fs *flag.FlagSet) (siteID *string, wind, solar, batteryHours, dod, flex, extraCap *float64) {
	siteID = fs.String("site", "UT", "site ID")
	wind = fs.Float64("wind", 0, "wind investment, MW")
	solar = fs.Float64("solar", 0, "solar investment, MW")
	batteryHours = fs.Float64("battery-hours", 0, "battery capacity in hours of average compute")
	dod = fs.Float64("dod", 1.0, "battery depth of discharge (0,1]")
	flex = fs.Float64("flex", 0, "flexible workload ratio [0,1]")
	extraCap = fs.Float64("extra-capacity", 0, "extra server capacity fraction of peak")
	return
}

func cmdEvaluate(args []string) error {
	fs := flag.NewFlagSet("evaluate", flag.ContinueOnError)
	siteID, wind, solar, batteryHours, dod, flex, extraCap := evaluateFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := checkNonNegative(map[string]float64{
		"wind": *wind, "solar": *solar,
		"battery-hours": *batteryHours, "extra-capacity": *extraCap,
	}); err != nil {
		return err
	}
	if *flex < 0 || *flex > 1 || math.IsNaN(*flex) {
		return flagRangeError("flex", *flex, "[0, 1]")
	}
	if *batteryHours > 0 && (*dod <= 0 || *dod > 1 || math.IsNaN(*dod)) {
		return flagRangeError("dod", *dod, "(0, 1] when -battery-hours > 0")
	}
	in, err := siteInputs(*siteID)
	if err != nil {
		return err
	}
	d := explorer.Design{
		WindMW: *wind, SolarMW: *solar,
		BatteryMWh: *batteryHours * in.AvgDemandMW(), DoD: *dod,
		FlexibleRatio: *flex, ExtraCapacityFrac: *extraCap,
	}
	if d.BatteryMWh == 0 {
		d.DoD = 0
	}
	o, err := in.Evaluate(d)
	if err != nil {
		return err
	}
	printOutcome(*siteID, o)
	return nil
}

func printOutcome(siteID string, o explorer.Outcome) {
	fmt.Printf("site %s design: wind %.0f MW, solar %.0f MW, battery %.0f MWh (DoD %.0f%%), flex %.0f%%, extra capacity %.0f%%\n",
		siteID, o.Design.WindMW, o.Design.SolarMW, o.Design.BatteryMWh, o.Design.DoD*100,
		o.Design.FlexibleRatio*100, o.Design.ExtraCapacityFrac*100)
	fmt.Printf("  24/7 coverage:        %.2f%%\n", o.CoveragePct)
	fmt.Printf("  operational carbon:   %s/yr (%.0f MWh grid energy)\n", o.Operational, o.GridEnergyMWh)
	fmt.Printf("  embodied carbon:      %s/yr (renewables %s, battery %s, servers %s)\n",
		o.Embodied, o.EmbodiedRenewables, o.EmbodiedBattery, o.EmbodiedServers)
	fmt.Printf("  total carbon:         %s/yr\n", o.Total())
	if o.Design.BatteryMWh > 0 {
		fmt.Printf("  battery cycles/day:   %.2f\n", o.BatteryCyclesPerDay)
	}
}

// adaptiveFlagValues collects the optimize flags that select and tune
// adaptive sweep mode, so the already-long optimizeFlags tuple doesn't grow
// by four more positional returns.
type adaptiveFlagValues struct {
	mode      *string
	tolerance *float64
	maxRounds *int
	coarse    *int
}

// plan folds the flag values into a sweep.Plan and validates them at parse
// time: adaptive knobs without -mode adaptive are an error, not a silent
// no-op, and the plan's own validation (tolerance range, lattice size)
// rejects nonsense before any evaluation starts.
func (a adaptiveFlagValues) plan(shard sweep.Shard) (sweep.Plan, error) {
	mode := sweep.ModeExhaustive
	if *a.mode != "" {
		var err error
		mode, err = sweep.ParseMode(*a.mode)
		if err != nil {
			return sweep.Plan{}, fmt.Errorf("flag -mode: %w", err)
		}
	}
	p := sweep.Plan{
		Mode:               mode,
		Shard:              shard,
		Tolerance:          *a.tolerance,
		MaxRounds:          *a.maxRounds,
		CoarsePointsPerDim: *a.coarse,
	}
	if mode != sweep.ModeAdaptive {
		if *a.tolerance != 0 {
			return sweep.Plan{}, fmt.Errorf("flag -tolerance requires -mode adaptive")
		}
		if *a.maxRounds != 0 {
			return sweep.Plan{}, fmt.Errorf("flag -max-rounds requires -mode adaptive")
		}
		if *a.coarse != 0 {
			return sweep.Plan{}, fmt.Errorf("flag -coarse requires -mode adaptive")
		}
	}
	if _, err := p.Normalized(); err != nil {
		return sweep.Plan{}, err
	}
	return p, nil
}

// hint renders the adaptive flags as the user set them, for the printed
// resume command — an adaptive checkpoint can only be resumed in adaptive
// mode, so a hint that drops these flags would fail with a mode mismatch.
func (a adaptiveFlagValues) hint() string {
	if *a.mode == "" {
		return ""
	}
	s := " -mode " + *a.mode
	if *a.tolerance != 0 {
		s += fmt.Sprintf(" -tolerance %g", *a.tolerance)
	}
	if *a.maxRounds != 0 {
		s += fmt.Sprintf(" -max-rounds %d", *a.maxRounds)
	}
	if *a.coarse != 0 {
		s += fmt.Sprintf(" -coarse %d", *a.coarse)
	}
	return s
}

func optimizeFlags(fs *flag.FlagSet) (siteID, strategyName *string, timeout *time.Duration, checkpoint *string, resume *bool, batch, retries *int, shardSpec *string, workers *int, coordinate *string, leases *int, heartbeat, leaseTTL *time.Duration, adapt adaptiveFlagValues) {
	siteID = fs.String("site", "UT", "site ID")
	strategyName = fs.String("strategy", "all", "renewables | battery | cas | all")
	timeout = fs.Duration("timeout", 0, "abort the sweep after this duration (0 = no limit), printing partial results")
	checkpoint = fs.String("checkpoint", "", "persist sweep progress to this file (JSON, versioned); an interrupted sweep can continue with -resume")
	resume = fs.Bool("resume", false, "resume the sweep recorded in -checkpoint instead of starting over")
	batch = fs.Int("batch", 0, "designs evaluated per batch — the peak number of outcomes held in memory (0 = default)")
	retries = fs.Int("retries", 1, "times a failed design is re-evaluated before being excluded (0 = a single failure is final)")
	shardSpec = fs.String("shard", "", "evaluate only slice i/N of the design space (e.g. 2/3); shard checkpoints fold together with 'merge'")
	workers = fs.Int("workers", 0, "coordinate a work-stealing sweep with N workers instead of the single-process engine (0 = single-process)")
	coordinate = fs.String("coordinate", "", "multi-process coordination: a lease directory shared by all workers, or a coordinator URL (http://host:8080, see the 'coordinate' subcommand); killed workers' leases are stolen and resumed either way")
	leases = fs.Int("leases", 0, "leases the coordinated space is split into (0 = 8 per worker); more leases = finer stealing granularity")
	heartbeat = fs.Duration("heartbeat", 0, "how often a coordinated worker refreshes its claimed lease's liveness (0 = 1s default)")
	leaseTTL = fs.Duration("lease-ttl", 0, "how stale a lease's heartbeat must be before another worker steals it (0 = 10× heartbeat); must be at least 3× the heartbeat")
	adapt.mode = fs.String("mode", "", "sweep mode: exhaustive (default) evaluates every design; adaptive starts from a coarse lattice and subdivides only cells that can still reach the Pareto frontier")
	adapt.tolerance = fs.Float64("tolerance", 0, "adaptive convergence tolerance as a fraction of the frontier extent (0 = 0.01 default); requires -mode adaptive")
	adapt.maxRounds = fs.Int("max-rounds", 0, "adaptive subdivision round budget (0 = 3 default); requires -mode adaptive")
	adapt.coarse = fs.Int("coarse", 0, "points per free axis of the adaptive coarse lattice (0 = 5 default, minimum 2); requires -mode adaptive")
	return
}

func cmdOptimize(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("optimize", flag.ContinueOnError)
	siteID, strategyName, timeout, checkpoint, resume, batch, retries, shardSpec, workers, coordinate, leases, heartbeat, leaseTTL, adapt := optimizeFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *timeout < 0 {
		return fmt.Errorf("flag -timeout: negative duration %v", *timeout)
	}
	if *batch < 0 {
		return fmt.Errorf("flag -batch: negative batch size %d", *batch)
	}
	if *retries < 0 {
		return fmt.Errorf("flag -retries: negative retry count %d", *retries)
	}
	if *workers < 0 {
		return fmt.Errorf("flag -workers: negative worker count %d", *workers)
	}
	if *leases < 0 {
		return fmt.Errorf("flag -leases: negative lease count %d", *leases)
	}
	coordinated := *workers > 0 || *coordinate != ""
	// A -coordinate value with an http(s):// prefix is a network
	// coordinator's URL; anything else is a shared lease directory.
	endpoint := ""
	leaseDir := *coordinate
	if strings.HasPrefix(*coordinate, "http://") || strings.HasPrefix(*coordinate, "https://") {
		endpoint, leaseDir = *coordinate, ""
	}
	if *leases > 0 && !coordinated {
		return fmt.Errorf("flag -leases requires -workers or -coordinate")
	}
	if *heartbeat < 0 {
		return fmt.Errorf("flag -heartbeat: negative duration %v", *heartbeat)
	}
	if *leaseTTL < 0 {
		return fmt.Errorf("flag -lease-ttl: negative duration %v", *leaseTTL)
	}
	if (*heartbeat > 0 || *leaseTTL > 0) && !coordinated {
		return fmt.Errorf("flags -heartbeat/-lease-ttl require -workers or -coordinate")
	}
	// Catch a liveness config that would steal leases from live workers at
	// parse time, instead of letting a fleet thrash at runtime. The same
	// floor is enforced by the engine and by the network coordinator.
	hb := *heartbeat
	if hb == 0 {
		hb = time.Second
	}
	if ttl := *leaseTTL; ttl > 0 && ttl < coordinator.HeartbeatSafetyFactor*hb {
		return fmt.Errorf("flag -lease-ttl: %v is less than %d× the %v heartbeat; live workers' leases would be stolen on ordinary scheduling jitter",
			ttl, coordinator.HeartbeatSafetyFactor, hb)
	}
	shard, err := sweep.ParseShard(*shardSpec)
	if err != nil {
		return fmt.Errorf("flag -shard: %w", err)
	}
	plan, err := adapt.plan(shard)
	if err != nil {
		return err
	}
	if coordinated {
		if !shard.IsZero() {
			return fmt.Errorf("flag -shard cannot be combined with -workers/-coordinate: the coordinator partitions the space itself")
		}
		if *resume {
			return fmt.Errorf("flag -resume cannot be combined with -workers/-coordinate: coordination resumes its lease checkpoints automatically")
		}
		if *checkpoint != "" && *coordinate == "" {
			return fmt.Errorf("flag -checkpoint with -workers requires -coordinate (in-process coordination keeps no files; the merged checkpoint lives next to the leases)")
		}
	} else {
		if *resume && *checkpoint == "" {
			return fmt.Errorf("flag -resume requires -checkpoint")
		}
		if !shard.IsZero() && *checkpoint == "" {
			return fmt.Errorf("flag -shard requires -checkpoint (a shard's result only exists as its checkpoint file)")
		}
	}
	var strategy explorer.Strategy
	switch strings.ToLower(*strategyName) {
	case "renewables":
		strategy = explorer.RenewablesOnly
	case "battery":
		strategy = explorer.RenewablesBattery
	case "cas":
		strategy = explorer.RenewablesCAS
	case "all":
		strategy = explorer.RenewablesBatteryCAS
	default:
		return fmt.Errorf("unknown strategy %q", *strategyName)
	}
	in, err := siteInputs(*siteID)
	if err != nil {
		return err
	}
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	sweepRetries := *retries
	if sweepRetries == 0 {
		sweepRetries = sweep.NoRetries
	}
	ckptPath := *checkpoint
	if leaseDir != "" && ckptPath == "" {
		ckptPath = coordinator.MergedCheckpointPath(leaseDir)
	}
	var res sweep.Result
	if coordinated {
		res, err = coordinator.Run(ctx, in, explorer.DefaultSpace(in), strategy, coordinator.Options{
			Workers:    *workers,
			Leases:     *leases,
			LeaseDir:   leaseDir,
			Endpoint:   endpoint,
			Checkpoint: *checkpoint,
			BatchSize:  *batch,
			Retries:    sweepRetries,
			Heartbeat:  *heartbeat,
			Expiry:     *leaseTTL,
			Plan:       plan,
		})
	} else {
		res, err = sweep.Run(ctx, in, explorer.DefaultSpace(in), strategy, sweep.Options{
			BatchSize: *batch,
			Retries:   sweepRetries,
			Plan:      plan,
			Checkpoint: sweep.CheckpointOptions{
				Path:   *checkpoint,
				Resume: *resume,
			},
		})
	}
	interrupted := errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
	if err != nil && !interrupted {
		return err
	}
	if interrupted && res.Report.Evaluated == 0 {
		return fmt.Errorf("sweep interrupted before any design finished: %w", err)
	}
	if res.Resumed {
		source := ckptPath
		if source == "" && endpoint != "" {
			source = endpoint
		}
		fmt.Printf("resumed from %s: %d designs restored\n", source, res.Report.Restored)
	}
	if !shard.IsZero() {
		total := res.Report.Evaluated + len(res.Report.Failures) + res.Report.Skipped + res.Report.OutOfShard
		fmt.Printf("shard %s of the %d-design space: %d designs belong to other shards\n",
			shard, total, res.Report.OutOfShard)
	}
	if interrupted {
		fmt.Printf("sweep interrupted (%v) — partial results over %d evaluated designs (%d skipped)\n",
			err, res.Report.Evaluated, res.Report.Skipped)
		switch {
		case endpoint != "":
			if ckptPath != "" {
				fmt.Printf("partial merged checkpoint saved to %s; ", ckptPath)
			}
			fmt.Printf("lease progress lives on the coordinator at %s; re-invoke the same command to continue\n", endpoint)
		case leaseDir != "":
			fmt.Printf("progress saved to %s; re-invoke the same command to continue\n", ckptPath)
		case *checkpoint != "":
			fmt.Printf("progress saved to %s; continue with: optimize -site %s -strategy %s%s -checkpoint %s -resume\n",
				*checkpoint, *siteID, *strategyName, adapt.hint(), *checkpoint)
		}
	}
	fmt.Printf("strategy %s: %d designs evaluated, %d on the Pareto frontier\n",
		strategy, res.Report.Evaluated, len(res.Frontier))
	if a := res.Adaptive; a != nil {
		fmt.Printf("adaptive refinement: %d rounds (evals per round %v), tolerance %g",
			a.Round+1, a.RoundEvals, a.Tolerance)
		if a.Converged {
			fmt.Println(", converged")
		} else {
			fmt.Println(", not yet converged")
		}
		if !a.Converged && !interrupted && !shard.IsZero() {
			fmt.Printf("shard %s finished its slice of round %d; fold the shard checkpoints with 'merge', copy the merged file over each shard checkpoint, and re-invoke with -resume to start round %d\n",
				shard, a.Round, a.Round+1)
		}
	}
	for _, wp := range res.Workers {
		fmt.Printf("worker %s: %d leases (%d stolen), %d designs evaluated, %d failed\n",
			wp.Worker, wp.Leases, wp.Stolen, wp.Evaluated, wp.Failed)
	}
	if res.Report.Retried > 0 {
		fmt.Printf("%d designs retried after a transient failure, %d recovered\n",
			res.Report.Retried, res.Report.Recovered)
	}
	if n := len(res.Report.Failures); n > 0 {
		fmt.Printf("%d designs failed and were excluded; first: %v\n", n, res.Report.Failures[0])
	}
	if shard.IsZero() {
		fmt.Println("carbon-optimal design:")
	} else {
		fmt.Println("carbon-optimal design over this shard's fold:")
	}
	printOutcome(*siteID, res.Optimal)
	if interrupted {
		return fmt.Errorf("sweep incomplete: %w", err)
	}
	if !shard.IsZero() {
		fmt.Printf("shard complete; fold shard checkpoints with: merge -out merged.json %s <other shards>\n", *checkpoint)
	}
	return nil
}

// cmdCoordinate serves the lease coordinator over HTTP. Workers on any
// machine join with `optimize -coordinate http://host:port`; all state
// persists in the -state directory, so killing and restarting the
// coordinator (same flags, same directory) resumes the fleet.
func coordinateFlags(fs *flag.FlagSet) (listen, state *string, ttl *time.Duration, leases *int, progressEvery *time.Duration) {
	listen = fs.String("listen", "", "address to serve the coordinator API on, e.g. :8080 (required)")
	state = fs.String("state", "coordinator-state", "state directory: lease records, per-lease checkpoints, and the merged checkpoint live here and survive restarts")
	ttl = fs.Duration("lease-ttl", 10*time.Second, "how stale a worker's heartbeat must be before its lease is stolen; must be at least 3× the workers' heartbeat interval")
	leases = fs.Int("leases", 0, "pin the lease count (0 = the first registering worker's proposal wins)")
	progressEvery = fs.Duration("progress", 10*time.Second, "how often to print fleet progress (0 = never)")
	return
}

func cmdCoordinate(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("coordinate", flag.ContinueOnError)
	listen, state, ttl, leases, progressEvery := coordinateFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *listen == "" {
		return fmt.Errorf("flag -listen: address is required")
	}
	if *ttl <= 0 {
		return fmt.Errorf("flag -lease-ttl: must be positive, got %v", *ttl)
	}
	if *leases < 0 {
		return fmt.Errorf("flag -leases: negative lease count %d", *leases)
	}
	if *progressEvery < 0 {
		return fmt.Errorf("flag -progress: negative duration %v", *progressEvery)
	}
	svc, err := coordinator.NewService(*state, coordinator.ServiceOptions{Expiry: *ttl, Leases: *leases})
	if err != nil {
		return err
	}
	srv := &http.Server{Addr: *listen, Handler: svc.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("coordinator listening on %s (state %s, lease TTL %v)\n", *listen, *state, *ttl)
	var progress <-chan time.Time
	if *progressEvery > 0 {
		tick := time.NewTicker(*progressEvery)
		defer tick.Stop()
		progress = tick.C
	}
	for {
		select {
		case <-ctx.Done():
			sctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), 5*time.Second)
			defer cancel()
			if err := srv.Shutdown(sctx); err != nil {
				return fmt.Errorf("shutting down coordinator: %w", err)
			}
			<-errc
			fmt.Printf("coordinator stopped; state kept in %s — restart with the same flags to resume the fleet\n", *state)
			return nil
		case err := <-errc:
			if errors.Is(err, http.ErrServerClosed) {
				return nil
			}
			return fmt.Errorf("coordinator server: %w", err)
		case <-progress:
			st := svc.Status()
			if !st.Registered {
				fmt.Println("no sweep registered yet; waiting for the first worker")
				continue
			}
			fmt.Printf("site %s sweep, %d designs: %d/%d leases done, %d running, %d expired, %d pending\n",
				st.Site, st.Designs, st.Done, st.LeaseCount, st.Running, st.Expired, st.Pending)
		}
	}
}

// cmdMerge folds shard checkpoint files into one merged checkpoint that
// `optimize -resume` accepts, printing per-shard and merged progress.
func mergeFlags(fs *flag.FlagSet) (out *string) {
	out = fs.String("out", "", "path for the merged checkpoint (required)")
	return
}

func cmdMerge(args []string) error {
	fs := flag.NewFlagSet("merge", flag.ContinueOnError)
	out := mergeFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("flag -out: merged checkpoint path is required")
	}
	srcs := fs.Args()
	if len(srcs) == 0 {
		return fmt.Errorf("usage: carbonexplorer merge -out merged.json shard1.json [shard2.json ...]")
	}
	rep, err := sweep.MergeCheckpoints(*out, srcs...)
	if err != nil {
		return err
	}
	for _, p := range rep.Inputs {
		label := p.Shard.String()
		if label == "" {
			label = "whole space"
		}
		size := p.End - p.Start
		fmt.Printf("  %s (shard %s): %d/%d done", p.Path, label, p.Done, size)
		if p.FailedOnce > 0 || p.FailedPerm > 0 {
			fmt.Printf(", %d awaiting retry, %d failed permanently", p.FailedOnce, p.FailedPerm)
		}
		if p.Pending > 0 {
			fmt.Printf(", %d pending", p.Pending)
		}
		fmt.Println()
	}
	fmt.Printf("merged %d checkpoints -> %s: %d/%d designs done", len(rep.Inputs), *out, rep.Done, rep.Total)
	if rep.FailedOnce > 0 || rep.FailedPerm > 0 {
		fmt.Printf(", %d awaiting retry, %d failed permanently", rep.FailedOnce, rep.FailedPerm)
	}
	if rep.Pending > 0 {
		fmt.Printf(", %d pending", rep.Pending)
	}
	fmt.Println()
	if !rep.Complete() {
		fmt.Printf("sweep incomplete; finish it with: optimize -checkpoint %s -resume (matching -site/-strategy)\n", *out)
	}
	return nil
}

func serveFlags(fs *flag.FlagSet) (listen, state *string) {
	listen = fs.String("listen", "", "address to serve the query API on, e.g. :8090 (required)")
	state = fs.String("state", "", "coordination state (or lease) directory whose merged checkpoint to serve, in addition to any positional checkpoint files")
	return
}

// cmdServe loads finished sweep checkpoints into an immutable in-memory
// index (internal/serve) and answers read-only queries over HTTP until
// interrupted. Positional arguments are checkpoint files; -state points at
// a coordinator's directory and serves the merged checkpoint a
// `coordinate`-run fleet produced there.
func cmdServe(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	listen, state := serveFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *listen == "" {
		return fmt.Errorf("flag -listen: address is required")
	}
	paths := fs.Args()
	if *state != "" {
		paths = append(paths, coordinator.MergedCheckpointPath(*state))
	}
	if len(paths) == 0 {
		return fmt.Errorf("usage: carbonexplorer serve -listen :8090 [-state coordinator-state] [checkpoint.json ...]")
	}
	ix, err := serve.Load(paths, serve.Options{})
	if err != nil {
		return err
	}
	for _, s := range ix.Snapshots() {
		status := "complete"
		if !s.Complete() {
			status = fmt.Sprintf("incomplete, %d/%d designs done", s.Done, s.Designs)
		}
		fmt.Printf("serving %s: site %s, strategy %s, %d frontier designs (%s)\n",
			s.SpaceHash, s.Site, s.Strategy, len(s.Frontier()), status)
	}
	srv := &http.Server{Addr: *listen, Handler: serve.Handler(ix)}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("query API listening on %s (%d sweeps); endpoints are documented in docs/SERVING.md\n",
		*listen, ix.Len())
	select {
	case <-ctx.Done():
		sctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			return fmt.Errorf("shutting down query API: %w", err)
		}
		<-errc
		return nil
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return fmt.Errorf("query API server: %w", err)
	}
}

// commandFlagSets builds a fresh flag set per subcommand through the same
// constructors the run path uses, so what it reports cannot drift from what
// the binary accepts. Flagless subcommands map to an empty set. Tests use
// this to hold documentation to the real flag surface.
func commandFlagSets() map[string]*flag.FlagSet {
	registrars := map[string]func(*flag.FlagSet){
		"sites":      func(*flag.FlagSet) {},
		"coverage":   func(fs *flag.FlagSet) { coverageFlags(fs) },
		"evaluate":   func(fs *flag.FlagSet) { evaluateFlags(fs) },
		"optimize":   func(fs *flag.FlagSet) { optimizeFlags(fs) },
		"coordinate": func(fs *flag.FlagSet) { coordinateFlags(fs) },
		"merge":      func(fs *flag.FlagSet) { mergeFlags(fs) },
		"serve":      func(fs *flag.FlagSet) { serveFlags(fs) },
		"figure":     func(*flag.FlagSet) {},
		"study":      func(fs *flag.FlagSet) { studyFlags(fs) },
	}
	out := make(map[string]*flag.FlagSet, len(registrars))
	for name, register := range registrars {
		fs := flag.NewFlagSet(name, flag.ContinueOnError)
		register(fs)
		out[name] = fs
	}
	return out
}

func cmdFigure(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: carbonexplorer figure <id>")
	}
	switch args[0] {
	case "1":
		if err := printTable(experiments.Figure01()); err != nil {
			return err
		}
		return printChart(experiments.Figure01Chart())
	case "3":
		return printTable(experiments.Figure03())
	case "4":
		return printTable(experiments.Figure04())
	case "5":
		t, regions, err := experiments.Figure05()
		if err != nil {
			return err
		}
		fmt.Print(t)
		for _, r := range regions {
			fmt.Printf("\n%s daily-total histogram:\n%s", r.BA, r.DailyHistogram.Render(40))
		}
		return nil
	case "6":
		if err := printTable(experiments.Figure06()); err != nil {
			return err
		}
		return printChart(experiments.Figure06Chart())
	case "7":
		return printTable(experiments.Figure07())
	case "8":
		return printTable(experiments.Figure08())
	case "9":
		return printTable(experiments.Figure09())
	case "10":
		return printTable(experiments.Figure10(), nil)
	case "11":
		if err := printTable(experiments.Figure11()); err != nil {
			return err
		}
		return printChart(experiments.Figure11Chart())
	case "12":
		return printTable(experiments.Figure12())
	case "14":
		t, _, err := experiments.Figure14()
		return printTable(t, err)
	case "15":
		t, _, err := experiments.Figure15(nil)
		return printTable(t, err)
	case "16":
		t, hist, err := experiments.Figure16()
		if err != nil {
			return err
		}
		fmt.Print(t)
		fmt.Printf("\ncharge-level histogram:\n%s", hist.Render(40))
		return nil
	default:
		return fmt.Errorf("unknown figure %q (supported: 1,3,4,5,6,7,8,9,10,11,12,14,15,16)", args[0])
	}
}

func studyFlags(fs *flag.FlagSet) (siteID *string, ratio *float64) {
	siteID = fs.String("site", "UT", "site ID for single-site studies")
	ratio = fs.Float64("migratable", 0.3, "migratable load ratio for the geo study")
	return
}

func cmdStudy(args []string) error {
	fs := flag.NewFlagSet("study", flag.ContinueOnError)
	siteID, ratio := studyFlags(fs)
	if len(args) == 0 {
		return fmt.Errorf("usage: carbonexplorer study <name> [flags]")
	}
	name := args[0]
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	switch name {
	case "dod":
		return printTable(experiments.DoDStudy(nil))
	case "cas-gains":
		return printTable(experiments.CASGains(nil))
	case "total-reduction":
		return printTable(experiments.TotalReduction(nil))
	case "netzero":
		return printTable(experiments.NetZeroStudy(nil))
	case "forecast":
		return printTable(experiments.ForecastStudy(*siteID))
	case "battery-tech":
		return printTable(experiments.BatteryTechStudy(*siteID))
	case "tiered":
		return printTable(experiments.TieredSchedulingStudy(*siteID))
	case "geo":
		return printTable(experiments.GeoBalanceStudy(*ratio))
	case "dispatch":
		return printTable(experiments.DispatchStudy(*siteID, 4))
	case "curtailment":
		return printTable(experiments.CurtailmentAbsorptionStudy(*siteID, 4.0))
	case "marginal":
		return printTable(experiments.MarginalStudy(*siteID))
	case "ensemble":
		return printTable(experiments.EnsembleStudy(*siteID, 5))
	case "pue":
		return printTable(experiments.PUEStudy())
	case "atlas":
		return printTable(experiments.CoverageAtlas())
	case "horizon":
		return printTable(experiments.HorizonStudy(*siteID, 10))
	case "dr-signals":
		return printTable(experiments.DRSignalStudy(*siteID))
	case "sensitivity":
		return printTable(experiments.SensitivityStudy(*siteID))
	case "fwr":
		return printTable(experiments.FWRSweep(*siteID))
	case "cost":
		return printTable(experiments.CostStudy(*siteID))
	case "robustness":
		return printTable(experiments.RobustnessStudy(*siteID, 4))
	case "optimizer":
		return printTable(experiments.OptimizerStudy(*siteID))
	case "jobsim":
		return printTable(experiments.JobSimStudy(*siteID))
	case "ablation":
		return printTable(experiments.SearchAblation(*siteID))
	default:
		return fmt.Errorf("unknown study %q", name)
	}
}

func printChart(c string, err error) error {
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Print(c)
	return nil
}

func printTable(t experiments.Table, err ...error) error {
	if len(err) > 0 && err[0] != nil {
		return err[0]
	}
	fmt.Print(t)
	return nil
}
