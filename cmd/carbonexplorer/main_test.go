package main

import (
	"testing"
)

func TestRunRequiresSubcommand(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("missing subcommand should error")
	}
	if err := run([]string{"bogus"}); err == nil {
		t.Fatal("unknown subcommand should error")
	}
}

func TestRunHelp(t *testing.T) {
	if err := run([]string{"help"}); err != nil {
		t.Fatalf("help failed: %v", err)
	}
}

func TestRunSites(t *testing.T) {
	if err := run([]string{"sites"}); err != nil {
		t.Fatalf("sites failed: %v", err)
	}
}

func TestRunCoverage(t *testing.T) {
	if err := run([]string{"coverage", "-site", "UT", "-wind", "100", "-solar", "100"}); err != nil {
		t.Fatalf("coverage failed: %v", err)
	}
	if err := run([]string{"coverage", "-site", "ZZ"}); err == nil {
		t.Fatal("unknown site should error")
	}
}

func TestRunEvaluate(t *testing.T) {
	if err := run([]string{"evaluate", "-site", "UT", "-wind", "100", "-battery-hours", "2", "-flex", "0.4"}); err != nil {
		t.Fatalf("evaluate failed: %v", err)
	}
	if err := run([]string{"evaluate", "-site", "UT", "-dod", "3"}); err != nil {
		// dod is ignored without a battery; this should succeed.
		t.Fatalf("evaluate without battery should ignore dod: %v", err)
	}
}

func TestRunOptimizeBadStrategy(t *testing.T) {
	if err := run([]string{"optimize", "-strategy", "nonsense"}); err == nil {
		t.Fatal("bad strategy should error")
	}
}

func TestRunFigureValidation(t *testing.T) {
	if err := run([]string{"figure"}); err == nil {
		t.Fatal("figure without id should error")
	}
	if err := run([]string{"figure", "99"}); err == nil {
		t.Fatal("unknown figure should error")
	}
	// Figure 2/13 are block diagrams, not data artifacts.
	if err := run([]string{"figure", "2"}); err == nil {
		t.Fatal("figure 2 is a diagram, should be rejected")
	}
	if err := run([]string{"figure", "10"}); err != nil {
		t.Fatalf("figure 10 failed: %v", err)
	}
}

func TestRunStudyValidation(t *testing.T) {
	if err := run([]string{"study"}); err == nil {
		t.Fatal("study without name should error")
	}
	if err := run([]string{"study", "nonsense"}); err == nil {
		t.Fatal("unknown study should error")
	}
	if err := run([]string{"study", "battery-tech", "-site", "UT"}); err != nil {
		t.Fatalf("battery-tech study failed: %v", err)
	}
}
