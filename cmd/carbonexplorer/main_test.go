package main

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

func runBg(args ...string) error { return run(context.Background(), args) }

func TestRunRequiresSubcommand(t *testing.T) {
	if err := runBg(); err == nil {
		t.Fatal("missing subcommand should error")
	}
	if err := runBg("bogus"); err == nil {
		t.Fatal("unknown subcommand should error")
	}
}

func TestRunHelp(t *testing.T) {
	if err := runBg("help"); err != nil {
		t.Fatalf("help failed: %v", err)
	}
}

func TestRunSites(t *testing.T) {
	if err := runBg("sites"); err != nil {
		t.Fatalf("sites failed: %v", err)
	}
}

func TestRunCoverage(t *testing.T) {
	if err := runBg("coverage", "-site", "UT", "-wind", "100", "-solar", "100"); err != nil {
		t.Fatalf("coverage failed: %v", err)
	}
	if err := runBg("coverage", "-site", "ZZ"); err == nil {
		t.Fatal("unknown site should error")
	}
}

func TestRunEvaluate(t *testing.T) {
	if err := runBg("evaluate", "-site", "UT", "-wind", "100", "-battery-hours", "2", "-flex", "0.4"); err != nil {
		t.Fatalf("evaluate failed: %v", err)
	}
	if err := runBg("evaluate", "-site", "UT", "-dod", "3"); err != nil {
		// dod is ignored without a battery; this should succeed.
		t.Fatalf("evaluate without battery should ignore dod: %v", err)
	}
}

func TestFlagValidation(t *testing.T) {
	cases := []struct {
		args []string
		flag string // expected flag name in the message
	}{
		{[]string{"evaluate", "-site", "UT", "-wind", "-5"}, "-wind"},
		{[]string{"evaluate", "-site", "UT", "-solar", "-1"}, "-solar"},
		{[]string{"evaluate", "-site", "UT", "-wind", "NaN"}, "-wind"},
		{[]string{"evaluate", "-site", "UT", "-battery-hours", "-2"}, "-battery-hours"},
		{[]string{"evaluate", "-site", "UT", "-battery-hours", "2", "-dod", "3"}, "-dod"},
		{[]string{"evaluate", "-site", "UT", "-battery-hours", "2", "-dod", "0"}, "-dod"},
		{[]string{"evaluate", "-site", "UT", "-flex", "1.5"}, "-flex"},
		{[]string{"evaluate", "-site", "UT", "-flex", "-0.1"}, "-flex"},
		{[]string{"evaluate", "-site", "UT", "-extra-capacity", "-1"}, "-extra-capacity"},
		{[]string{"coverage", "-site", "UT", "-wind", "-1"}, "-wind"},
		{[]string{"coverage", "-site", "UT", "-solar", "Inf"}, "-solar"},
	}
	for _, c := range cases {
		err := runBg(c.args...)
		if err == nil {
			t.Fatalf("%v: invalid flag accepted", c.args)
		}
		if !strings.Contains(err.Error(), c.flag) {
			t.Fatalf("%v: error %q does not name flag %s", c.args, err, c.flag)
		}
	}
}

func TestOptimizeTimeoutPrintsPartialOrInterrupts(t *testing.T) {
	// A microscopic timeout must interrupt the sweep with a context error,
	// never hang or panic. (Whether any design finishes first is timing-
	// dependent; both outcomes return a DeadlineExceeded-wrapped error.)
	err := runBg("optimize", "-site", "UT", "-strategy", "renewables", "-timeout", "1ns")
	if err == nil {
		t.Fatal("1ns sweep should be interrupted")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded in chain, got %v", err)
	}
}

func TestOptimizeCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := run(ctx, []string{"optimize", "-site", "UT", "-strategy", "renewables"})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want Canceled in chain, got %v", err)
	}
}

func TestOptimizeNegativeTimeout(t *testing.T) {
	if err := runBg("optimize", "-timeout", "-1s"); err == nil {
		t.Fatal("negative timeout accepted")
	}
}

func TestOptimizeCompletesWithGenerousTimeout(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep in -short mode")
	}
	start := time.Now()
	if err := runBg("optimize", "-site", "UT", "-strategy", "renewables", "-timeout", "10m"); err != nil {
		t.Fatalf("optimize with generous timeout failed after %v: %v", time.Since(start), err)
	}
}

func TestOptimizeFlagValidation(t *testing.T) {
	if err := runBg("optimize", "-batch", "-1"); err == nil {
		t.Fatal("negative batch size accepted")
	}
	if err := runBg("optimize", "-resume"); err == nil {
		t.Fatal("-resume without -checkpoint accepted")
	}
}

func TestOptimizeCheckpointResume(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep in -short mode")
	}
	ckpt := filepath.Join(t.TempDir(), "sweep.json")

	// Interrupt a checkpointed sweep before it starts: even then the sweep
	// must persist its state so -resume can pick it up. (Mid-sweep resume
	// equivalence is covered by the sweep and faultinject package tests.)
	err := runBg("optimize", "-site", "UT", "-strategy", "renewables",
		"-checkpoint", ckpt, "-batch", "4", "-timeout", "1ns")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if _, statErr := os.Stat(ckpt); statErr != nil {
		t.Fatalf("interrupted sweep left no checkpoint: %v", statErr)
	}

	// Resume must finish the sweep from the file.
	if err := runBg("optimize", "-site", "UT", "-strategy", "renewables",
		"-checkpoint", ckpt, "-resume"); err != nil {
		t.Fatalf("resume failed: %v", err)
	}

	// Resuming the same checkpoint under a different strategy must be
	// rejected, not silently mixed.
	if err := runBg("optimize", "-site", "UT", "-strategy", "battery",
		"-checkpoint", ckpt, "-resume"); err == nil {
		t.Fatal("checkpoint resumed under a different strategy")
	}
}

func TestShardFlagValidation(t *testing.T) {
	cases := []struct {
		args []string
		flag string // expected flag name in the message
	}{
		{[]string{"optimize", "-site", "UT", "-shard", "0/3", "-checkpoint", "x.json"}, "-shard"},
		{[]string{"optimize", "-site", "UT", "-shard", "4/3", "-checkpoint", "x.json"}, "-shard"},
		{[]string{"optimize", "-site", "UT", "-shard", "-1/3", "-checkpoint", "x.json"}, "-shard"},
		{[]string{"optimize", "-site", "UT", "-shard", "1/0", "-checkpoint", "x.json"}, "-shard"},
		{[]string{"optimize", "-site", "UT", "-shard", "a/3", "-checkpoint", "x.json"}, "-shard"},
		{[]string{"optimize", "-site", "UT", "-shard", "1/b", "-checkpoint", "x.json"}, "-shard"},
		{[]string{"optimize", "-site", "UT", "-shard", "2", "-checkpoint", "x.json"}, "-shard"},
		{[]string{"optimize", "-site", "UT", "-shard", "1.5/3", "-checkpoint", "x.json"}, "-shard"},
	}
	for _, c := range cases {
		err := runBg(c.args...)
		if err == nil {
			t.Fatalf("%v: invalid shard accepted", c.args)
		}
		if !strings.Contains(err.Error(), c.flag) {
			t.Fatalf("%v: error %q does not name flag %s", c.args, err, c.flag)
		}
	}

	// A shard worker without a checkpoint has nothing to merge later.
	if err := runBg("optimize", "-site", "UT", "-shard", "1/3"); err == nil {
		t.Fatal("-shard without -checkpoint accepted")
	}
}

func TestCoordinateFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		flag string // expected flag name in the message
	}{
		{"negative workers", []string{"optimize", "-site", "UT", "-workers", "-2"}, "-workers"},
		{"negative leases", []string{"optimize", "-site", "UT", "-workers", "2", "-leases", "-8"}, "-leases"},
		{"negative retries", []string{"optimize", "-site", "UT", "-retries", "-1"}, "-retries"},
		{"leases without coordination", []string{"optimize", "-site", "UT", "-leases", "8"}, "-leases"},
		{"shard conflicts with workers", []string{"optimize", "-site", "UT", "-workers", "2", "-shard", "1/3", "-checkpoint", "x.json"}, "-shard"},
		{"resume conflicts with coordinate", []string{"optimize", "-site", "UT", "-coordinate", "leases", "-resume"}, "-resume"},
		{"checkpoint with in-process workers", []string{"optimize", "-site", "UT", "-workers", "2", "-checkpoint", "x.json"}, "-checkpoint"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := runBg(c.args...)
			if err == nil {
				t.Fatalf("%v: invalid flag combination accepted", c.args)
			}
			if !strings.Contains(err.Error(), c.flag) {
				t.Fatalf("%v: error %q does not name flag %s", c.args, err, c.flag)
			}
		})
	}
}

func TestOptimizeCoordinated(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep in -short mode")
	}
	// In-process work stealing.
	if err := runBg("optimize", "-site", "UT", "-strategy", "renewables",
		"-workers", "2"); err != nil {
		t.Fatalf("in-process coordinated optimize failed: %v", err)
	}
	// Lease-directory coordination leaves a complete merged checkpoint that
	// a plain resume accepts, and cleans its lease files up.
	dir := t.TempDir()
	if err := runBg("optimize", "-site", "UT", "-strategy", "renewables",
		"-workers", "2", "-coordinate", dir, "-leases", "6"); err != nil {
		t.Fatalf("lease-directory coordinated optimize failed: %v", err)
	}
	merged := filepath.Join(dir, "merged.json")
	if err := runBg("optimize", "-site", "UT", "-strategy", "renewables",
		"-checkpoint", merged, "-resume"); err != nil {
		t.Fatalf("resume of coordinator's merged checkpoint failed: %v", err)
	}
	leftovers, err := filepath.Glob(filepath.Join(dir, "lease-*"))
	if err != nil {
		t.Fatalf("globbing lease files: %v", err)
	}
	if len(leftovers) != 0 {
		t.Fatalf("lease files left behind after a complete run: %v", leftovers)
	}
}

func TestMergeFlagValidation(t *testing.T) {
	if err := runBg("merge"); err == nil {
		t.Fatal("merge without -out or inputs accepted")
	}
	if err := runBg("merge", "-out", filepath.Join(t.TempDir(), "m.json")); err == nil {
		t.Fatal("merge without input checkpoints accepted")
	}
	if err := runBg("merge", "shard1.json"); err == nil {
		t.Fatal("merge without -out accepted")
	}
	if err := runBg("merge", "-out", filepath.Join(t.TempDir(), "m.json"),
		filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("merge of a missing checkpoint accepted")
	}
}

func TestOptimizeShardMergeResume(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep in -short mode")
	}
	// The OPERATIONS.md worked example, end to end: three shard workers,
	// one merge, one resume that verifies nothing is left pending.
	dir := t.TempDir()
	var shards []string
	for i := 1; i <= 3; i++ {
		ckpt := filepath.Join(dir, "shard"+strconv.Itoa(i)+".json")
		if err := runBg("optimize", "-site", "UT", "-strategy", "renewables",
			"-shard", strconv.Itoa(i)+"/3", "-checkpoint", ckpt); err != nil {
			t.Fatalf("shard %d/3 failed: %v", i, err)
		}
		shards = append(shards, ckpt)
	}
	merged := filepath.Join(dir, "merged.json")
	if err := runBg(append([]string{"merge", "-out", merged}, shards...)...); err != nil {
		t.Fatalf("merge failed: %v", err)
	}
	if err := runBg("optimize", "-site", "UT", "-strategy", "renewables",
		"-checkpoint", merged, "-resume"); err != nil {
		t.Fatalf("resume of merged checkpoint failed: %v", err)
	}
}

func TestRunOptimizeBadStrategy(t *testing.T) {
	if err := runBg("optimize", "-strategy", "nonsense"); err == nil {
		t.Fatal("bad strategy should error")
	}
}

func TestRunFigureValidation(t *testing.T) {
	if err := runBg("figure"); err == nil {
		t.Fatal("figure without id should error")
	}
	if err := runBg("figure", "99"); err == nil {
		t.Fatal("unknown figure should error")
	}
	// Figure 2/13 are block diagrams, not data artifacts.
	if err := runBg("figure", "2"); err == nil {
		t.Fatal("figure 2 is a diagram, should be rejected")
	}
	if err := runBg("figure", "10"); err != nil {
		t.Fatalf("figure 10 failed: %v", err)
	}
}

func TestRunStudyValidation(t *testing.T) {
	if err := runBg("study"); err == nil {
		t.Fatal("study without name should error")
	}
	if err := runBg("study", "nonsense"); err == nil {
		t.Fatal("unknown study should error")
	}
	if err := runBg("study", "battery-tech", "-site", "UT"); err != nil {
		t.Fatalf("battery-tech study failed: %v", err)
	}
}

func TestAdaptiveFlagValidation(t *testing.T) {
	cases := []struct {
		args []string
		want string // expected fragment of the error message
	}{
		{[]string{"optimize", "-site", "UT", "-mode", "turbo"}, "-mode"},
		{[]string{"optimize", "-site", "UT", "-tolerance", "0.1"}, "-tolerance"},
		{[]string{"optimize", "-site", "UT", "-max-rounds", "2"}, "-max-rounds"},
		{[]string{"optimize", "-site", "UT", "-coarse", "3"}, "-coarse"},
		{[]string{"optimize", "-site", "UT", "-mode", "adaptive", "-tolerance", "1.5"}, "out of [0, 1)"},
		{[]string{"optimize", "-site", "UT", "-mode", "adaptive", "-tolerance", "-0.1"}, "out of [0, 1)"},
		{[]string{"optimize", "-site", "UT", "-mode", "adaptive", "-max-rounds", "-1"}, "MaxRounds"},
		{[]string{"optimize", "-site", "UT", "-mode", "adaptive", "-coarse", "1"}, "at least 2"},
	}
	for _, c := range cases {
		err := runBg(c.args...)
		if err == nil {
			t.Fatalf("%v: invalid flags accepted", c.args)
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Fatalf("%v: error %q does not mention %q", c.args, err, c.want)
		}
	}
}

func TestOptimizeAdaptive(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "adaptive.json")
	if err := runBg("optimize", "-site", "UT", "-strategy", "all", "-mode", "adaptive",
		"-tolerance", "0.05", "-max-rounds", "2", "-coarse", "3", "-checkpoint", ckpt); err != nil {
		t.Fatalf("adaptive optimize failed: %v", err)
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("adaptive optimize left no checkpoint: %v", err)
	}
	// Re-invoking with -resume fast-forwards through the converged
	// checkpoint without evaluating anything (and without error).
	if err := runBg("optimize", "-site", "UT", "-strategy", "all", "-mode", "adaptive",
		"-tolerance", "0.05", "-max-rounds", "2", "-coarse", "3", "-checkpoint", ckpt, "-resume"); err != nil {
		t.Fatalf("adaptive resume failed: %v", err)
	}
}

func TestOptimizeAdaptiveCoordinated(t *testing.T) {
	if testing.Short() {
		t.Skip("coordinated adaptive sweep in -short mode")
	}
	dir := t.TempDir()
	if err := runBg("optimize", "-site", "UT", "-strategy", "all", "-mode", "adaptive",
		"-tolerance", "0.05", "-max-rounds", "2", "-coarse", "3",
		"-workers", "2", "-coordinate", filepath.Join(dir, "leases")); err != nil {
		t.Fatalf("coordinated adaptive optimize failed: %v", err)
	}
}
