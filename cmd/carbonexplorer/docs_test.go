package main

// Documentation drift tests: every carbonexplorer command line quoted in
// the markdown docs must use flags the binary actually defines, and every
// relative link must resolve. Both run in the CI docs job, so a renamed
// flag or moved file fails the build instead of rotting in the docs.

import (
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// repoRoot is the repository root relative to this package's directory.
const repoRoot = "../.."

// docFiles lists every markdown file the drift tests hold to the binary:
// the README plus everything under docs/.
func docFiles(t *testing.T) []string {
	t.Helper()
	files := []string{filepath.Join(repoRoot, "README.md")}
	matches, err := filepath.Glob(filepath.Join(repoRoot, "docs", "*.md"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(matches)
	files = append(files, matches...)
	if len(files) < 2 {
		t.Fatalf("expected README.md plus docs/*.md, found only %v", files)
	}
	return files
}

// commandLineRE finds `carbonexplorer <subcommand> ...` invocations in doc
// text — inside fenced sh blocks, inline code spans, and prose.
var commandLineRE = regexp.MustCompile(`carbonexplorer\s+([a-z-]+)([^\n` + "`" + `)]*)`)

// flagTokenRE extracts -flag tokens from an invocation's argument text.
var flagTokenRE = regexp.MustCompile(`(^|\s)-([a-zA-Z][a-zA-Z0-9-]*)`)

// TestDocCommandFlagsExist asserts that every flag a doc shows on a
// carbonexplorer command line is defined by that subcommand, via the same
// flag constructors the binary parses with (commandFlagSets). A flag
// renamed in main.go without a docs sweep — or a typo in a doc example —
// fails here.
func TestDocCommandFlagsExist(t *testing.T) {
	sets := commandFlagSets()
	checked := 0
	for _, path := range docFiles(t) {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range commandLineRE.FindAllStringSubmatch(string(data), -1) {
			sub, rest := m[1], m[2]
			fs, known := sets[sub]
			if !known {
				// Not a subcommand (e.g. "carbonexplorer binary" in prose).
				continue
			}
			for _, fm := range flagTokenRE.FindAllStringSubmatch(rest, -1) {
				name := fm[2]
				if fs.Lookup(name) == nil {
					t.Errorf("%s: `carbonexplorer %s` uses -%s, which the %s subcommand does not define",
						filepath.Base(path), sub, name, sub)
				}
				checked++
			}
		}
	}
	if checked == 0 {
		t.Fatal("no flags found in any doc command line; the extraction regex has drifted from the docs")
	}
}

// TestDocsCoverEverySubcommand asserts the operator docs mention each
// subcommand at least once, so a new subcommand ships documented.
func TestDocsCoverEverySubcommand(t *testing.T) {
	var all strings.Builder
	for _, path := range docFiles(t) {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		all.Write(data)
		all.WriteByte('\n')
	}
	text := all.String()
	for sub := range commandFlagSets() {
		if !strings.Contains(text, "carbonexplorer "+sub) {
			t.Errorf("subcommand %q appears nowhere in README.md or docs/*.md", sub)
		}
	}
}

// TestDocPackageComments asserts every internal package has a doc.go whose
// comment opens with the conventional "// Package <name>" line — the check
// the CI docs job used to run as a shell grep.
func TestDocPackageComments(t *testing.T) {
	dirs, err := filepath.Glob(filepath.Join(repoRoot, "internal", "*"))
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, dir := range dirs {
		info, err := os.Stat(dir)
		if err != nil || !info.IsDir() {
			continue
		}
		name := filepath.Base(dir)
		data, err := os.ReadFile(filepath.Join(dir, "doc.go"))
		if err != nil {
			t.Errorf("internal/%s has no doc.go package comment file (%v)", name, err)
			continue
		}
		if !strings.Contains(string(data), "// Package "+name) {
			t.Errorf("internal/%s/doc.go does not contain a '// Package %s' comment", name, name)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no internal packages found; the glob has drifted from the repo layout")
	}
}

// markdownLinkRE matches [text](target) links; images share the syntax.
var markdownLinkRE = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestDocRelativeLinksResolve asserts every relative link in README.md and
// docs/*.md points at a file that exists, so renames and moves cannot leave
// dangling references.
func TestDocRelativeLinksResolve(t *testing.T) {
	checked := 0
	for _, path := range docFiles(t) {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range markdownLinkRE.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(path), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s links to %q, which does not resolve (%v)", filepath.Base(path), m[1], err)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no relative links found in any doc; the link regex has drifted from the docs")
	}
}
