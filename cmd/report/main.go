// Command report regenerates every table and figure of the paper's
// evaluation and prints them, in order — the full reproduction run backing
// EXPERIMENTS.md.
//
// Usage:
//
//	report             # everything (Figure 15 across all 13 sites takes ~30s)
//	report -quick      # subset the expensive sweeps to the three example sites
//	report -markdown   # emit GitHub-flavoured markdown instead of plain text
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"carbonexplorer/internal/experiments"
)

// markdownMode switches table rendering to GitHub-flavoured markdown.
var markdownMode bool

func main() {
	quick := flag.Bool("quick", false, "restrict expensive sweeps to OR/UT/NC")
	flag.BoolVar(&markdownMode, "markdown", false, "emit markdown tables")
	flag.Parse()
	if err := run(*quick); err != nil {
		fmt.Fprintln(os.Stderr, "report:", err)
		os.Exit(1)
	}
}

// printTable renders a table in the selected mode.
func printTable(t experiments.Table) {
	if markdownMode {
		fmt.Println(t.Markdown())
	} else {
		fmt.Print(t)
	}
}

// printBlock renders preformatted text (ASCII histograms) in the selected
// mode.
func printBlock(label, body string) {
	if markdownMode {
		fmt.Printf("\n%s:\n\n```\n%s```\n", label, body)
	} else {
		fmt.Printf("\n%s:\n%s", label, body)
	}
}

func run(quick bool) error {
	var fig15Sites []string
	if quick {
		fig15Sites = []string{"OR", "UT", "NC"}
	}

	type step struct {
		name string
		fn   func() (experiments.Table, error)
	}
	steps := []step{
		{"Figure 1", experiments.Figure01},
		{"Table 1", func() (experiments.Table, error) { return experiments.Table01(), nil }},
		{"Figure 3", experiments.Figure03},
		{"Table 2", func() (experiments.Table, error) { return experiments.Table02(), nil }},
		{"Figure 4", experiments.Figure04},
		{"Figure 5", func() (experiments.Table, error) {
			t, regions, err := experiments.Figure05()
			if err != nil {
				return t, err
			}
			printTable(t)
			for _, r := range regions {
				printBlock(r.BA+" daily renewable generation histogram (MWh/day)", r.DailyHistogram.Render(40))
			}
			fmt.Println()
			return t, errAlreadyPrinted
		}},
		{"Figure 6", experiments.Figure06},
		{"Figure 7", experiments.Figure07},
		{"Figure 8", experiments.Figure08},
		{"Figure 9", experiments.Figure09},
		{"Figure 10", func() (experiments.Table, error) { return experiments.Figure10(), nil }},
		{"Figure 11", experiments.Figure11},
		{"Figure 12", experiments.Figure12},
		{"Figure 14", func() (experiments.Table, error) {
			t, _, err := experiments.Figure14()
			return t, err
		}},
		{"Figure 15", func() (experiments.Table, error) {
			t, _, err := experiments.Figure15(fig15Sites)
			return t, err
		}},
		{"Figure 16", func() (experiments.Table, error) {
			t, hist, err := experiments.Figure16()
			if err != nil {
				return t, err
			}
			printTable(t)
			printBlock("charge-level histogram", hist.Render(40))
			fmt.Println()
			return t, errAlreadyPrinted
		}},
		{"DoD study", func() (experiments.Table, error) {
			sites := fig15Sites
			if sites == nil {
				sites = []string{"OR", "UT", "NC", "TX", "IA"}
			}
			return experiments.DoDStudy(sites)
		}},
		{"CAS gains", func() (experiments.Table, error) { return experiments.CASGains(fig15Sites) }},
		{"Total reduction", func() (experiments.Table, error) { return experiments.TotalReduction(fig15Sites) }},
		{"Net Zero study", func() (experiments.Table, error) { return experiments.NetZeroStudy(fig15Sites) }},
		{"Forecast study", func() (experiments.Table, error) { return experiments.ForecastStudy("UT") }},
		{"Battery technology study", func() (experiments.Table, error) { return experiments.BatteryTechStudy("NC") }},
		{"Tiered scheduling study", func() (experiments.Table, error) { return experiments.TieredSchedulingStudy("UT") }},
		{"Geographic balancing study", func() (experiments.Table, error) { return experiments.GeoBalanceStudy(0.3) }},
		{"Battery dispatch study", func() (experiments.Table, error) { return experiments.DispatchStudy("UT", 4) }},
		{"Optimizer study", func() (experiments.Table, error) { return experiments.OptimizerStudy("UT") }},
		{"Cost study", func() (experiments.Table, error) { return experiments.CostStudy("UT") }},
		{"Robustness study", func() (experiments.Table, error) { return experiments.RobustnessStudy("UT", 4) }},
		{"Sensitivity study", func() (experiments.Table, error) { return experiments.SensitivityStudy("UT") }},
		{"Flexible-ratio sweep", func() (experiments.Table, error) { return experiments.FWRSweep("UT") }},
		{"DR signal study", func() (experiments.Table, error) { return experiments.DRSignalStudy("TX") }},
		{"Horizon study", func() (experiments.Table, error) { return experiments.HorizonStudy("UT", 10) }},
		{"Coverage atlas", func() (experiments.Table, error) { return experiments.CoverageAtlas() }},
		{"Cooling/PUE study", func() (experiments.Table, error) { return experiments.PUEStudy() }},
		{"Ensemble study", func() (experiments.Table, error) { return experiments.EnsembleStudy("UT", 5) }},
		{"Marginal accounting study", func() (experiments.Table, error) { return experiments.MarginalStudy("UT") }},
		{"Curtailment absorption study", func() (experiments.Table, error) { return experiments.CurtailmentAbsorptionStudy("OR", 4.0) }},
		{"Job-level simulation study", func() (experiments.Table, error) { return experiments.JobSimStudy("UT") }},
		{"Design-space ablation", func() (experiments.Table, error) { return experiments.SearchAblation("NC") }},
	}

	for _, s := range steps {
		start := time.Now()
		t, err := s.fn()
		switch err {
		case nil:
			printTable(t)
		case errAlreadyPrinted:
			// The step printed its own richer output.
		default:
			return fmt.Errorf("%s: %w", s.name, err)
		}
		if markdownMode {
			fmt.Printf("_%s regenerated in %v_\n\n", s.name, time.Since(start).Round(time.Millisecond))
		} else {
			fmt.Printf("[%s regenerated in %v]\n\n", s.name, time.Since(start).Round(time.Millisecond))
		}
	}
	return nil
}

// errAlreadyPrinted signals that a step printed its own output.
var errAlreadyPrinted = fmt.Errorf("already printed")
