// Package carbonexplorer is a holistic framework for designing carbon-aware
// datacenters, reproducing "Carbon Explorer: A Holistic Framework for
// Designing Carbon Aware Datacenters" (ASPLOS 2023).
//
// The framework takes hourly datacenter power demand and hourly renewable
// generation for the datacenter's regional grid, explores a design space of
//
//   - renewable energy investments (wind and solar capacity),
//   - battery storage (a C/L/C lithium-ion model), and
//   - carbon-aware workload scheduling (with extra server capacity),
//
// and finds the configuration minimizing total carbon — operational carbon
// from grid energy plus the embodied carbon of manufacturing farms,
// batteries, and servers.
//
// # Quick start
//
//	site := carbonexplorer.MustSite("UT")
//	in, err := carbonexplorer.NewInputs(site)
//	if err != nil { ... }
//	outcome, err := in.Evaluate(carbonexplorer.Design{
//		WindMW:     239,
//		SolarMW:    694,
//		BatteryMWh: 4 * in.AvgDemandMW(),
//		DoD:        1.0,
//	})
//	fmt.Printf("coverage %.1f%%, total %s/yr\n", outcome.CoveragePct, outcome.Total())
//
// Sites ships the paper's Table 1 locations; supply data is simulated by a
// physically-motivated synthetic grid model, and real hourly data can be
// substituted via NewInputsFromSeries or the eiacsv-format loader in the
// gridgen tool.
package carbonexplorer

import (
	"context"
	"net/http"

	"carbonexplorer/internal/battery"
	"carbonexplorer/internal/carbon"
	"carbonexplorer/internal/coordinator"
	"carbonexplorer/internal/dcload"
	"carbonexplorer/internal/explorer"
	"carbonexplorer/internal/fleet"
	"carbonexplorer/internal/forecast"
	"carbonexplorer/internal/grid"
	"carbonexplorer/internal/netzero"
	"carbonexplorer/internal/scheduler"
	"carbonexplorer/internal/serve"
	"carbonexplorer/internal/sweep"
	"carbonexplorer/internal/timeseries"
	"carbonexplorer/internal/units"
	"carbonexplorer/internal/workload"
)

// Core exploration types.
type (
	// Inputs bundles a site's demand and supply data for design evaluation.
	Inputs = explorer.Inputs
	// Design is one point in the design space.
	Design = explorer.Design
	// Outcome is an evaluated design: coverage, operational and embodied
	// carbon.
	Outcome = explorer.Outcome
	// Strategy selects which solution dimensions a search may use.
	Strategy = explorer.Strategy
	// Space bounds a design-space search.
	Space = explorer.Space
	// SearchResult holds all evaluated points and the carbon optimum.
	SearchResult = explorer.SearchResult
	// SearchReport accounts for every design in a sweep: evaluated,
	// failed (with the offending design and cause), or skipped after
	// cancellation.
	SearchReport = explorer.SearchReport
	// DesignError pairs a failed design with its error.
	DesignError = explorer.DesignError
	// PanicError is a panic recovered from a search worker, with stack.
	PanicError = explorer.PanicError
	// ScenarioIntensities compares grid-mix, Net Zero, and 24/7 hourly
	// operational carbon intensity.
	ScenarioIntensities = explorer.ScenarioIntensities
)

// Grid and site types.
type (
	// Site is a datacenter location with its regional renewable
	// investments (the paper's Table 1).
	Site = grid.Site
	// BAProfile describes a balancing authority's generation profile.
	BAProfile = grid.BAProfile
	// GridYear is one simulated year of hourly grid operation.
	GridYear = grid.Year
)

// Modelling types.
type (
	// Series is an hourly time series.
	Series = timeseries.Series
	// RepairPolicy bounds the gap-filling that tolerant data loading may
	// perform.
	RepairPolicy = timeseries.RepairPolicy
	// RepairReport accounts for every value a Repair changed.
	RepairReport = timeseries.RepairReport
	// BatteryParams configures the C/L/C storage model.
	BatteryParams = battery.Params
	// Battery is a stateful storage simulator.
	Battery = battery.Battery
	// EmbodiedParams holds manufacturing-footprint assumptions.
	EmbodiedParams = carbon.EmbodiedParams
	// DemandParams configures the datacenter demand model.
	DemandParams = dcload.Params
	// DemandTrace is simulated utilization and power.
	DemandTrace = dcload.Trace
	// SchedulerConfig parameterizes greedy daily workload shifting.
	SchedulerConfig = scheduler.Config
	// WorkloadTier is a completion-time SLO class.
	WorkloadTier = workload.Tier
	// BatteryTechnology selects a storage chemistry (LFP, NMC, sodium-ion).
	BatteryTechnology = battery.Technology
	// Forecaster predicts future hours of a series for online scheduling.
	Forecaster = forecast.Forecaster
	// NetZeroSummary compares credit matching across accounting windows.
	NetZeroSummary = netzero.Summary
	// FleetDC is one datacenter in a geographic load-balancing fleet.
	FleetDC = fleet.DC
	// FleetConfig parameterizes geographic load migration.
	FleetConfig = fleet.Config
	// FleetResult summarizes a fleet-balancing run.
	FleetResult = fleet.Result
)

// Storage chemistries for Design.BatteryTech.
const (
	LFP       = battery.LFPCell
	NMC       = battery.NMCCell
	SodiumIon = battery.NaIonCell
)

// The four strategies of the paper's Section 5.
const (
	RenewablesOnly       = explorer.RenewablesOnly
	RenewablesBattery    = explorer.RenewablesBattery
	RenewablesCAS        = explorer.RenewablesCAS
	RenewablesBatteryCAS = explorer.RenewablesBatteryCAS
)

// Sites returns the paper's thirteen datacenter locations.
func Sites() []Site { return grid.Sites() }

// SiteByID returns the site with the given short identifier (e.g. "UT").
func SiteByID(id string) (Site, error) { return grid.SiteByID(id) }

// MustSite is SiteByID for statically known identifiers; it panics on a
// miss.
func MustSite(id string) Site { return grid.MustSite(id) }

// BalancingAuthorities lists the supported balancing-authority codes.
func BalancingAuthorities() []string { return grid.Codes() }

// NewInputs assembles evaluation inputs for a site by simulating its grid
// year and demand trace. Options WithDemandParams and WithEmbodiedParams
// customize the models.
func NewInputs(site Site, opts ...explorer.Option) (*Inputs, error) {
	return explorer.NewInputs(site, opts...)
}

// WithDemandParams overrides the default demand model in NewInputs.
func WithDemandParams(p DemandParams) explorer.Option { return explorer.WithDemandParams(p) }

// WithEmbodiedParams overrides the embodied-carbon assumptions in NewInputs.
func WithEmbodiedParams(p EmbodiedParams) explorer.Option { return explorer.WithEmbodiedParams(p) }

// NewInputsFromSeries assembles inputs from caller-provided hourly series,
// for users substituting measured grid and datacenter data. Series are
// validated (finite, non-negative, matching lengths); pass WithSeriesRepair
// to accept and gap-fill mildly corrupt data instead.
func NewInputsFromSeries(site Site, demand, windShape, solarShape, gridCI Series, emb EmbodiedParams, opts ...explorer.Option) (*Inputs, error) {
	return explorer.NewInputsFromSeries(site, demand, windShape, solarShape, gridCI, emb, opts...)
}

// WithSeriesRepair makes NewInputsFromSeries repair invalid samples (NaN,
// infinities, negatives) under the given policy instead of rejecting them.
func WithSeriesRepair(p RepairPolicy) explorer.Option { return explorer.WithSeriesRepair(p) }

// DefaultRepairPolicy interpolates gaps up to 6 hours and clamps negative
// samples to zero.
func DefaultRepairPolicy() RepairPolicy { return timeseries.DefaultRepairPolicy() }

// ErrAllDesignsFailed reports a sweep in which no design survived
// evaluation; the SearchReport in the accompanying SearchResult lists every
// failure.
var ErrAllDesignsFailed = explorer.ErrAllDesignsFailed

// Coverage computes the paper's 24/7 renewable-coverage metric (percent of
// datacenter energy covered hourly by renewable supply).
func Coverage(demand, renewable Series) (float64, error) {
	return explorer.Coverage(demand, renewable)
}

// DefaultSpace returns a paper-scaled search grid for a site.
func DefaultSpace(in *Inputs) Space { return explorer.DefaultSpace(in) }

// AllStrategies lists the four strategies in the paper's order.
func AllStrategies() []Strategy { return explorer.AllStrategies() }

// ParetoFrontier extracts the non-dominated outcomes in the
// (operational, embodied) carbon plane, sorted by increasing embodied
// carbon.
func ParetoFrontier(points []Outcome) []Outcome { return explorer.ParetoFrontier(points) }

// Streaming sweep types (internal/sweep): bounded-memory, checkpointable,
// retrying design-space sweeps for grids too dense to materialize.
type (
	// SweepOptions configures a streaming sweep: batch size (peak resident
	// outcomes), checkpointing (the Checkpoint sub-struct), retry policy
	// (Retries; SweepNoRetries disables), and the Plan describing what the
	// sweep covers (mode, shard slice, adaptive knobs). The top-level Shard
	// field is deprecated in favor of Plan.Shard.
	SweepOptions = sweep.Options
	// SweepCheckpointOptions is the Checkpoint sub-struct of SweepOptions:
	// path, save cadence, and resume flag. The zero value disables
	// checkpointing.
	SweepCheckpointOptions = sweep.CheckpointOptions
	// SweepResult is the streamed optimum, Pareto frontier, and accounting.
	SweepResult = sweep.Result
	// SweepReport accounts for every design: evaluated, restored from
	// checkpoint, retried, recovered, failed, skipped, or left to other
	// shards.
	SweepReport = sweep.Report
	// SweepPlan is the single entry point describing what a sweep covers:
	// the mode (exhaustive or adaptive), the shard slice, and the adaptive
	// refinement knobs (Tolerance, MaxRounds, CoarsePointsPerDim). The zero
	// value is a full exhaustive sweep. It subsumes the deprecated
	// SweepOptions.Shard field; see DESIGN.md for the migration table.
	SweepPlan = sweep.Plan
	// SweepMode selects between exhaustive and adaptive sweeps in a
	// SweepPlan.
	SweepMode = sweep.Mode
	// SweepAdaptiveProgress reports an adaptive sweep's refinement state:
	// rounds executed, evaluations per round, surviving cells, convergence.
	SweepAdaptiveProgress = sweep.AdaptiveProgress
	// SweepShard identifies one worker's contiguous i/N slice of a sweep's
	// design enumeration; the zero value means unsharded.
	SweepShard = sweep.Shard
	// SweepShardPlan pairs a shard with its concrete design-index range.
	SweepShardPlan = sweep.ShardPlan
	// SweepMergeReport accounts for a checkpoint merge: per-shard progress
	// and merged totals.
	SweepMergeReport = sweep.MergeReport
	// SweepShardProgress summarizes one input checkpoint of a merge.
	SweepShardProgress = sweep.ShardProgress
	// SweepWorkerProgress summarizes one coordinated worker's share of a
	// sweep: leases finished, leases stolen, designs evaluated and failed.
	SweepWorkerProgress = sweep.WorkerProgress
)

// SweepNoRetries disables failed-design retries in SweepOptions.Retries
// (the zero value means the default single retry).
const SweepNoRetries = sweep.NoRetries

// Sweep modes for SweepPlan.Mode.
const (
	// SweepModeExhaustive evaluates every design in the space — the
	// default.
	SweepModeExhaustive = sweep.ModeExhaustive
	// SweepModeAdaptive refines a coarse lattice toward the Pareto
	// frontier, evaluating orders of magnitude fewer designs than the dense
	// grid while reaching the same frontier within SweepPlan.Tolerance.
	SweepModeAdaptive = sweep.ModeAdaptive
)

// Sweep checkpoint errors.
var (
	// ErrCheckpointVersion reports a checkpoint from an incompatible schema
	// version.
	ErrCheckpointVersion = sweep.ErrCheckpointVersion
	// ErrCheckpointMismatch reports a checkpoint that describes a different
	// sweep (site, strategy, space, inputs, or shard slice changed).
	ErrCheckpointMismatch = sweep.ErrCheckpointMismatch
	// ErrBadShard reports a malformed or out-of-range shard specification.
	ErrBadShard = sweep.ErrBadShard
)

// RunSweep executes a streaming sweep of the space under the strategy:
// designs are evaluated in bounded batches and folded into a running
// optimum and Pareto frontier, so memory stays flat in grid density. With a
// checkpoint configured in opts.Checkpoint, an interrupted sweep resumes
// where it stopped and converges to the same result as an uninterrupted
// run; failed designs are retried opts.Retries times (default once) before
// exclusion. See internal/sweep for the checkpoint format.
func RunSweep(ctx context.Context, in *Inputs, space Space, strategy Strategy, opts SweepOptions) (SweepResult, error) {
	return sweep.Run(ctx, in, space, strategy, opts)
}

// RunAdaptiveSweep executes an adaptive sweep: a coarse lattice over the
// space is evaluated, cells that provably cannot reach the Pareto frontier
// within plan.Tolerance are pruned, and the survivors are subdivided for
// the next round, up to plan.MaxRounds. The refinement work-list is a pure
// function of the space, the plan, and the prior round's frontier, so
// results are byte-identical to the same plan run sharded or coordinated,
// and checkpoints resume across interruptions exactly like exhaustive
// sweeps. plan.Mode is forced to SweepModeAdaptive; every other SweepOptions
// field (batch, retries, checkpointing) applies unchanged.
func RunAdaptiveSweep(ctx context.Context, in *Inputs, space Space, strategy Strategy, plan SweepPlan, opts SweepOptions) (SweepResult, error) {
	plan.Mode = sweep.ModeAdaptive
	opts.Plan = plan
	return sweep.Run(ctx, in, space, strategy, opts)
}

// ParseSweepMode parses a sweep mode name ("exhaustive" or "adaptive") for
// SweepPlan.Mode.
func ParseSweepMode(s string) (SweepMode, error) { return sweep.ParseMode(s) }

// ParseSweepShard parses an "index/count" shard specification (e.g. "2/3")
// for SweepPlan.Shard; the empty string means unsharded. Malformed or
// out-of-range specifications wrap ErrBadShard.
func ParseSweepShard(spec string) (SweepShard, error) { return sweep.ParseShard(spec) }

// PlanSweepShards partitions an n-design enumeration into count contiguous,
// balanced slices — the deterministic, coordination-free launch plan for a
// sharded sweep. Use Space.Enumerate (via DefaultSpace and the strategy) to
// obtain n, hand each worker its i/count, and merge the resulting
// checkpoints with MergeSweepCheckpoints. CoordinateSweep uses the same
// planner with a much finer count to hand slices out dynamically instead.
func PlanSweepShards(n, count int) ([]SweepShardPlan, error) { return sweep.PlanShards(n, count) }

// MergeSweepResults folds independently obtained sweep results — shard or
// lease slices of one design space — into a single result, exactly as if
// one process had swept the union: the optimum is the minimum over inputs,
// the frontier is the associative Pareto fold, and accounting sums.
func MergeSweepResults(results ...SweepResult) SweepResult { return sweep.MergeResults(results...) }

// CoordinatorOptions configures a dynamically coordinated sweep: worker
// count, lease granularity, the optional lease directory for multi-process
// coordination, and liveness timings. The zero value picks sensible
// defaults (GOMAXPROCS workers, 8 leases per worker, in-process mode).
type CoordinatorOptions = coordinator.Options

// CoordinateSweep runs a work-stealing coordinated sweep: the design space
// is split into many small leases (far more leases than workers) which
// workers claim dynamically, so a slow or failed worker delays only its
// current lease rather than a fixed 1/N of the space. With
// opts.LeaseDir set, independently launched processes sharing that
// directory coordinate through heartbeat-stamped lease files — a killed
// worker's lease expires and is stolen, resuming from its per-lease
// checkpoint — and the merged result is byte-identical to a single-process
// RunSweep over the same space. With opts.Endpoint set instead, the same
// protocol runs over HTTP against a CoordinatorService: workers on any
// machine share the sweep with no common filesystem.
func CoordinateSweep(ctx context.Context, in *Inputs, space Space, strategy Strategy, opts CoordinatorOptions) (SweepResult, error) {
	return coordinator.Run(ctx, in, space, strategy, opts)
}

// CoordinatorService is the transport-agnostic lease-coordination core: it
// hands out design-space leases, folds uploaded progress checkpoints, and
// persists everything to a state directory so a killed-and-restarted
// coordinator resumes its fleet. Serve its Handler over HTTP and point
// CoordinateSweep workers at the URL via CoordinatorOptions.Endpoint.
type CoordinatorService = coordinator.Service

// CoordinatorServiceOptions configures a CoordinatorService: the lease TTL
// and an optional pinned lease count.
type CoordinatorServiceOptions = coordinator.ServiceOptions

// CoordinatorClient speaks the coordinator HTTP protocol directly — the
// low-level client CoordinateSweep uses under the hood, exported for
// status polling and custom tooling. Every call retries transient network
// failures with deterministic jittered exponential backoff.
type CoordinatorClient = coordinator.Client

// CoordinatorClientOptions tunes a CoordinatorClient's per-request
// timeout, retry budget, backoff base, and transport.
type CoordinatorClientOptions = coordinator.ClientOptions

// NewCoordinatorService opens (or resumes) a lease coordinator over the
// given state directory.
func NewCoordinatorService(stateDir string, opts CoordinatorServiceOptions) (*CoordinatorService, error) {
	return coordinator.NewService(stateDir, opts)
}

// NewCoordinatorClient returns a client for the coordinator HTTP API at
// base, e.g. "http://host:8080".
func NewCoordinatorClient(base string, opts CoordinatorClientOptions) *CoordinatorClient {
	return coordinator.NewClient(base, opts)
}

// MergeSweepCheckpoints folds any set of shard checkpoint files — complete
// or partial — into a single merged checkpoint at dst that RunSweep's
// Resume accepts. The merge is associative: per-design statuses join, the
// optimum is the min over shard optima, and the Pareto frontier is the fold
// of all shard frontiers, so the merged state equals a single-process sweep
// over every design the shards completed. Checkpoints from a different
// sweep are rejected with ErrCheckpointMismatch.
func MergeSweepCheckpoints(dst string, srcs ...string) (SweepMergeReport, error) {
	return sweep.MergeCheckpoints(dst, srcs...)
}

// MergeFrontiers folds any number of Pareto frontiers into one — the
// associative frontier merge that lets partitions of a design space be
// swept independently: MergeFrontiers(ParetoFrontier(a), ParetoFrontier(b))
// equals ParetoFrontier(a ∪ b) for any split.
func MergeFrontiers(frontiers ...[]Outcome) []Outcome { return explorer.MergeFrontiers(frontiers...) }

// DefaultEmbodiedParams returns the paper's Section 5.1 assumptions.
func DefaultEmbodiedParams() EmbodiedParams { return carbon.DefaultEmbodiedParams() }

// DefaultDemandParams returns the paper-calibrated demand model for a
// datacenter with the given average power.
func DefaultDemandParams(avgPowerMW float64) DemandParams { return dcload.DefaultParams(avgPowerMW) }

// LFPBattery returns the paper's Lithium Iron Phosphate battery
// configuration at the given capacity (MWh) and depth of discharge.
func LFPBattery(capacityMWh, dod float64) BatteryParams { return battery.LFP(capacityMWh, dod) }

// NewBattery builds a battery simulator from params.
func NewBattery(p BatteryParams) (*Battery, error) { return battery.New(p) }

// GenerateGridYear simulates one hourly year for a balancing authority.
func GenerateGridYear(baCode string) (*GridYear, error) {
	p, err := grid.Profile(baCode)
	if err != nil {
		return nil, err
	}
	return grid.GenerateYear(p), nil
}

// ShiftDaily applies the paper's greedy carbon-aware scheduling pass: within
// each window, flexible load moves from high-signal hours (carbon intensity
// or renewable deficit) to low-signal hours under a capacity cap.
func ShiftDaily(demand, signal Series, cfg SchedulerConfig) (Series, error) {
	return scheduler.ShiftDaily(demand, signal, cfg)
}

// GramsCO2 is a carbon mass in grams of CO2-equivalent.
type GramsCO2 = units.GramsCO2

// MegaWattHours is energy in MWh.
type MegaWattHours = units.MegaWattHours

// SeriesOf builds an hourly series from literal values.
func SeriesOf(values ...float64) Series { return timeseries.FromValues(values) }

// ConstantSeries builds an n-hour series of a constant value.
func ConstantSeries(n int, v float64) Series { return timeseries.Constant(n, v) }

// GenerateSeries builds an n-hour series by evaluating f at each hour.
func GenerateSeries(n int, f func(hour int) float64) Series { return timeseries.Generate(n, f) }

// Credit-matching granularities for NetZeroSummary.ByPeriod.
const (
	MatchAnnual  = netzero.Annual
	MatchMonthly = netzero.Monthly
	MatchDaily   = netzero.Daily
	MatchHourly  = netzero.Hourly
)

// NetZeroSummarize compares REC matching at annual, monthly, daily, and
// hourly windows for a demand/credit pair — the paper's Net Zero vs 24/7
// gap, quantified.
func NetZeroSummarize(demand, credits Series) (NetZeroSummary, error) {
	return netzero.Summarize(demand, credits)
}

// BalanceFleet migrates load across datacenters toward renewable surpluses.
func BalanceFleet(dcs []FleetDC, cfg FleetConfig) (FleetResult, error) {
	return fleet.Balance(dcs, cfg)
}

// EnsembleResult summarizes a design's outcome distribution across weather
// years.
type EnsembleResult = explorer.EnsembleResult

// EnsembleEvaluate evaluates a design across several weather realizations
// of the site's climate, returning coverage and total-carbon percentiles —
// the design-under-uncertainty view the paper's single-year (2020)
// evaluation cannot provide.
func EnsembleEvaluate(site Site, d Design, years int) (EnsembleResult, error) {
	return explorer.EnsembleEvaluate(site, d, years)
}

// EnsembleEvaluateContext is EnsembleEvaluate honoring cancellation between
// weather years.
func EnsembleEvaluateContext(ctx context.Context, site Site, d Design, years int) (EnsembleResult, error) {
	return explorer.EnsembleEvaluateContext(ctx, site, d, years)
}

// Read-optimized serving layer (internal/serve): finished sweep checkpoints
// load into an immutable in-memory index that answers
// optimum-under-constraints, Pareto-frontier, per-region comparison, and
// chart queries — lock-free and allocation-free on the hot read path. See
// docs/SERVING.md for the HTTP API this backs.
type (
	// ServeIndex is an immutable set of loaded sweeps keyed by space hash.
	ServeIndex = serve.Index
	// ServeSnapshot is one loaded sweep, frozen into query-ready form.
	ServeSnapshot = serve.Snapshot
	// ServePoint is one queryable frontier design with its capital cost.
	ServePoint = serve.Point
	// ServeQuery constrains an optimum query; ServeUnconstrained fields
	// impose nothing.
	ServeQuery = serve.Query
	// ServeOptions configures index construction (cost model, inputs
	// source); the zero value uses the defaults.
	ServeOptions = serve.Options
	// SweepCheckpoint is the validated, read-only view of a sweep
	// checkpoint file.
	SweepCheckpoint = sweep.Checkpoint
)

// ErrServeInfeasible reports that no frontier design satisfies a
// ServeQuery's constraints.
var ErrServeInfeasible = serve.ErrInfeasible

// ServeUnconstrained marks a ServeQuery field as absent (it is NaN; any NaN
// works).
var ServeUnconstrained = serve.Unconstrained

// LoadServeIndex builds an immutable query index from sweep checkpoint
// files — per-shard, merged, or coordinator-produced. Files describing the
// same space hash are rejected; fold them first with MergeSweepCheckpoints.
func LoadServeIndex(paths []string, opts ServeOptions) (*ServeIndex, error) {
	return serve.Load(paths, opts)
}

// ServeHandler exposes the index's query API over HTTP — the handler behind
// `carbonexplorer serve`. Endpoints, schemas, and error codes are
// documented in docs/SERVING.md.
func ServeHandler(ix *ServeIndex) http.Handler { return serve.Handler(ix) }

// ReadSweepCheckpoint loads and validates one checkpoint file without
// resuming it: progress counts, the running optimum, and the Pareto
// frontier, for tooling that inspects sweeps without re-evaluating designs.
func ReadSweepCheckpoint(path string) (*SweepCheckpoint, error) {
	return sweep.ReadCheckpoint(path)
}
